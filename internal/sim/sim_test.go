package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: FIFO
	s.Run(0)
	if len(order) != 4 || order[0] != 1 || order[1] != 11 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestAfterAndRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(100, func() {
		fired++
		s.After(100, func() { fired++ })
	})
	s.RunUntil(150)
	if fired != 1 {
		t.Fatalf("fired = %d at t=150", fired)
	}
	if s.Now() != 150 {
		t.Fatalf("Now = %d", s.Now())
	}
	s.RunUntil(300)
	if fired != 2 {
		t.Fatalf("fired = %d at t=300", fired)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		s.At(50, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d", s.Now())
			}
		})
	})
	s.Run(0)
}

func TestRunStepLimit(t *testing.T) {
	s := New(1)
	count := 0
	var loop func()
	loop = func() { count++; s.After(1, loop) }
	s.After(1, loop)
	if steps := s.Run(10); steps != 10 || count != 10 {
		t.Fatalf("steps=%d count=%d", steps, count)
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(42)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	if s.Uniform(5, 5) != 5 {
		t.Fatal("degenerate range")
	}
}

func TestNetDeliveryAndCounters(t *testing.T) {
	s := New(7)
	n := NewNet(s, 10, 10, 5)
	var got []Msg
	n.Handle(2, func(m Msg) { got = append(got, m) })
	n.Send(Msg{From: 1, To: 2, Kind: "X"})
	s.Run(0)
	if len(got) != 1 || got[0].Kind != "X" {
		t.Fatalf("got %v", got)
	}
	if n.Sent != 1 || n.ByKind["X"] != 1 {
		t.Fatalf("counters: %d %v", n.Sent, n.ByKind)
	}
}

func TestNetCrashStopsDeliveryAndNotifies(t *testing.T) {
	s := New(7)
	n := NewNet(s, 10, 10, 5)
	delivered := false
	n.Handle(2, func(Msg) { delivered = true })
	n.Handle(1, func(Msg) {})
	notified := []int{}
	n.WatchSuspicions(func(observer, suspect int) {
		if observer == 1 {
			notified = append(notified, suspect)
		}
	})

	n.Send(Msg{From: 1, To: 2, Kind: "X"}) // in flight at crash time
	s.At(5, func() { n.Crash(2) })
	s.Run(0)
	if delivered {
		t.Fatal("message delivered to crashed site")
	}
	if len(notified) != 1 || notified[0] != 2 {
		t.Fatalf("notifications: %v", notified)
	}
	if n.Alive(2) || !n.Alive(1) {
		t.Fatal("alive state wrong")
	}
	// Crashed senders transmit nothing.
	before := n.Sent
	n.Send(Msg{From: 2, To: 1, Kind: "X"})
	if n.Sent != before {
		t.Fatal("crashed site sent a message")
	}
}

func TestFailureFreeCommitAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{Central2PC, Central3PC, Decentral2PC, Decentral3PC} {
		for _, n := range []int{2, 3, 5, 9} {
			res := FailureFree(proto, n, 42)
			if !res.Committed || res.Aborted {
				t.Errorf("%s n=%d: committed=%v aborted=%v", proto, n, res.Committed, res.Aborted)
			}
			if !res.Consistent || res.Blocked {
				t.Errorf("%s n=%d: consistent=%v blocked=%v", proto, n, res.Consistent, res.Blocked)
			}
			if res.Done == 0 {
				t.Errorf("%s n=%d: not all sites decided", proto, n)
			}
			for id, so := range res.Sites {
				if so.Phase != 'c' {
					t.Errorf("%s n=%d site %d phase %c", proto, n, id, so.Phase)
				}
			}
		}
	}
}

func TestUnilateralAbortAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{Central2PC, Central3PC, Decentral2PC, Decentral3PC} {
		res := RunTransaction(Config{
			N: 4, Protocol: proto, Seed: 9,
			VoteNo: map[int]bool{3: true},
		})
		if !res.Aborted || res.Committed || !res.Consistent {
			t.Errorf("%s: aborted=%v committed=%v consistent=%v",
				proto, res.Aborted, res.Committed, res.Consistent)
		}
	}
}

func TestMessageComplexityShape(t *testing.T) {
	// Failure-free message counts: central protocols linear in n,
	// decentralized quadratic; 3PC strictly more than 2PC.
	c2 := FailureFree(Central2PC, 9, 1).Messages
	c3 := FailureFree(Central3PC, 9, 1).Messages
	d2 := FailureFree(Decentral2PC, 9, 1).Messages
	d3 := FailureFree(Decentral3PC, 9, 1).Messages
	n := 9
	if c2 != 3*(n-1) {
		t.Errorf("central 2PC messages = %d, want %d", c2, 3*(n-1))
	}
	if c3 != 5*(n-1) {
		t.Errorf("central 3PC messages = %d, want %d", c3, 5*(n-1))
	}
	if d2 != n*(n-1) {
		t.Errorf("decentralized 2PC messages = %d, want %d", d2, n*(n-1))
	}
	if d3 != 2*n*(n-1) {
		t.Errorf("decentralized 3PC messages = %d, want %d", d3, 2*n*(n-1))
	}
}

func TestLatencyShape(t *testing.T) {
	// 3PC pays roughly two extra message delays over 2PC; decentralized
	// variants finish in fewer rounds than their central counterparts.
	l2 := CommitLatency(Central2PC, 5, 20, 3)
	l3 := CommitLatency(Central3PC, 5, 20, 3)
	d2 := CommitLatency(Decentral2PC, 5, 20, 3)
	d3 := CommitLatency(Decentral3PC, 5, 20, 3)
	if l3 <= l2 {
		t.Errorf("central 3PC latency %d should exceed 2PC %d", l3, l2)
	}
	if d3 <= d2 {
		t.Errorf("decentralized 3PC latency %d should exceed 2PC %d", d3, d2)
	}
	if d2 >= l2 {
		t.Errorf("decentralized 2PC (%d) should beat central 2PC (%d): fewer sequential hops", d2, l2)
	}
}

// TestTwoPCBlocksUnderCoordinatorCrash: crash the coordinator in the
// uncertainty window; every operational site blocks.
func TestTwoPCBlocksUnderCoordinatorCrash(t *testing.T) {
	// With fixed 1ms latency: participants vote at 1ms (arriving at 2ms);
	// crashing the coordinator at 1.5ms leaves both participants in w with
	// no decision anywhere.
	res := RunTransaction(Config{
		N: 3, Protocol: Central2PC, Seed: 5,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		CrashAt: map[int]Time{1: Millisecond + 500*Microsecond},
	})
	if !res.Blocked {
		t.Fatalf("expected blocking, got %+v", res)
	}
	if !res.Consistent {
		t.Fatal("blocking must still be consistent")
	}
}

// TestThreePCNeverBlocks sweeps the coordinator crash time over the whole
// protocol window: 3PC terminates every time.
func TestThreePCNeverBlocks(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		stats := CoordinatorCrashSweep(Central3PC, n, 400, 11, 20*Millisecond)
		if stats.Blocked != 0 {
			t.Errorf("n=%d: 3PC blocked in %d/%d trials", n, stats.Blocked, stats.Trials)
		}
		if stats.Inconsistent != 0 {
			t.Errorf("n=%d: %d inconsistent trials", n, stats.Inconsistent)
		}
		if stats.Undecided != 0 {
			t.Errorf("n=%d: %d undecided trials", n, stats.Undecided)
		}
	}
}

// TestTwoPCBlocksSometimes: the same sweep under 2PC has a nonzero blocked
// fraction (the uncertainty window is real) and never an inconsistency.
func TestTwoPCBlocksSometimes(t *testing.T) {
	stats := CoordinatorCrashSweep(Central2PC, 3, 400, 11, 20*Millisecond)
	if stats.Blocked == 0 {
		t.Fatal("2PC never blocked across the sweep; the window should be hit")
	}
	if stats.Inconsistent != 0 {
		t.Fatalf("%d inconsistent trials", stats.Inconsistent)
	}
}

// TestDecentralizedSweeps: the decentralized 2PC also blocks (a site that
// crashes during its pre-vote work leaves every survivor uncertain);
// decentralized 3PC does not.
func TestDecentralizedSweeps(t *testing.T) {
	blocked2 := RandomCrashSweep(Decentral2PC, 4, 1, 400, 23, 2*Millisecond)
	if blocked2.Blocked == 0 {
		t.Error("decentralized 2PC never blocked")
	}
	if blocked2.Inconsistent != 0 {
		t.Errorf("decentralized 2PC: %d inconsistent", blocked2.Inconsistent)
	}
	blocked3 := RandomCrashSweep(Decentral3PC, 4, 1, 400, 23, 2*Millisecond)
	if blocked3.Blocked != 0 {
		t.Errorf("decentralized 3PC blocked in %d trials", blocked3.Blocked)
	}
	if blocked3.Inconsistent != 0 {
		t.Errorf("decentralized 3PC: %d inconsistent", blocked3.Inconsistent)
	}
	if blocked3.Undecided != 0 {
		t.Errorf("decentralized 3PC: %d undecided", blocked3.Undecided)
	}
}

// TestMultipleFailures3PC: 3PC stays live and consistent with up to n-1
// crashes ("as long as one site remains operational").
func TestMultipleFailures3PC(t *testing.T) {
	for k := 1; k <= 3; k++ {
		stats := RandomCrashSweep(Central3PC, 4, k, 300, 31, 15*Millisecond)
		if stats.Inconsistent != 0 {
			t.Errorf("k=%d: %d inconsistent", k, stats.Inconsistent)
		}
		if stats.Blocked != 0 {
			t.Errorf("k=%d: %d blocked", k, stats.Blocked)
		}
		if stats.Undecided != 0 {
			t.Errorf("k=%d: %d undecided", k, stats.Undecided)
		}
	}
}

// TestBackupPhase1Ablation: skipping phase 1 of the backup protocol breaks
// safety — "Phase 1 ... is required because the backup coordinator may
// fail" (slide 39). Deterministic schedule (fixed 1ms latency, 2ms message
// stagger, 5ms crash detection):
//
//	t=0     coordinator sends XACT to 2/3/4 at 0/2/4ms; votes return
//	t=6ms   coordinator enters p, sends PREPARE to 2 (6ms) and 3 (8ms)
//	t=9ms   coordinator crashes before PREPARE reaches 4 → 4 stays in w
//	t=14ms  crash detected; backup = site 2, in p
//	        - without phase 1: 2 commits, sends COMMIT to 3 (14ms), crashes
//	          at 15ms before sending to 4; 3 commits at 15ms, crashes at
//	          15.5ms; survivor 4 (in w) elects itself and ABORTS at ~20ms —
//	          mixed with the durable commits at 2 and 3: INCONSISTENT.
//	        - with phase 1: 2 first synchronizes 4 to p; it crashes before
//	          any COMMIT exists, so no site commits and 4's abort is
//	          consistent.
func TestBackupPhase1Ablation(t *testing.T) {
	cfg := Config{
		N: 4, Protocol: Central3PC, Seed: 7,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		Stagger: 2 * Millisecond,
		CrashAt: map[int]Time{
			1: 9 * Millisecond,
			2: 15 * Millisecond,
			3: 15*Millisecond + 500*Microsecond,
		},
	}
	withPhase1 := RunTransaction(cfg)
	if !withPhase1.Consistent {
		t.Fatalf("phase 1 enabled but inconsistent: %+v", withPhase1.Sites)
	}
	if withPhase1.Sites[4].Crashed || withPhase1.Sites[4].DecidedAt == 0 {
		t.Fatalf("survivor did not terminate with phase 1: %+v", withPhase1.Sites[4])
	}

	cfg.SkipBackupPhase1 = true
	without := RunTransaction(cfg)
	if without.Consistent {
		t.Fatalf("ablation stayed consistent; schedule missed the window: %+v", without.Sites)
	}
	if !without.Committed || !without.Aborted {
		t.Fatalf("expected mixed outcomes, got %+v", without.Sites)
	}
}

// TestQuickConsistency is the property test: under arbitrary crash
// schedules and vote patterns, no protocol ever produces mixed outcomes.
func TestQuickConsistency(t *testing.T) {
	f := func(seed int64, crashRaw []uint16, votes uint8, protoRaw uint8, nRaw uint8) bool {
		n := 2 + int(nRaw%6)
		proto := Protocol(protoRaw % 4)
		crash := map[int]Time{}
		for i, c := range crashRaw {
			if i >= n-1 { // always leave site n alive
				break
			}
			crash[i+1] = Time(c) * 50 * Microsecond
		}
		voteNo := map[int]bool{}
		for i := 0; i < n; i++ {
			if votes&(1<<uint(i%8)) != 0 && i%2 == 0 {
				voteNo[i+1] = true
			}
		}
		res := RunTransaction(Config{
			N: n, Protocol: proto, Seed: seed,
			CrashAt: crash, VoteNo: voteNo,
		})
		return res.Consistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearTwoPC: the chained extension commits failure-free with exactly
// 2(n-1) messages and ~2(n-1) sequential delays, aborts atomically on a NO
// anywhere in the chain, and is the latency-worst/message-best point in the
// design space.
func TestLinearTwoPC(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		res := FailureFree(Linear2PC, n, 4)
		if !res.Committed || !res.Consistent || res.Done == 0 {
			t.Fatalf("n=%d: %+v", n, res)
		}
		if want := 2 * (n - 1); res.Messages != want {
			t.Errorf("n=%d messages = %d, want %d", n, res.Messages, want)
		}
	}
	// Abort in the middle of the chain reaches everyone.
	res := RunTransaction(Config{N: 5, Protocol: Linear2PC, Seed: 4, VoteNo: map[int]bool{3: true}})
	if !res.Aborted || res.Committed || !res.Consistent || res.Done == 0 {
		t.Fatalf("abort run: %+v", res)
	}
	// Latency: linear costs more sequential delays than central 2PC.
	linear := CommitLatency(Linear2PC, 7, 30, 5)
	central := CommitLatency(Central2PC, 7, 30, 5)
	if linear <= central {
		t.Errorf("linear latency %d should exceed central %d", linear, central)
	}
	// Messages: linear costs fewer than central.
	if l, c := FailureFree(Linear2PC, 7, 5).Messages, FailureFree(Central2PC, 7, 5).Messages; l >= c {
		t.Errorf("linear messages %d should undercut central %d", l, c)
	}
}

// TestRepairUnblocks2PC: the coordinator crashes inside the uncertainty
// window; the participants block for exactly the repair time — recovery
// re-broadcasts the (logged or default-abort) decision and releases them.
func TestRepairUnblocks2PC(t *testing.T) {
	res := RunTransaction(Config{
		N: 3, Protocol: Central2PC, Seed: 5,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		CrashAt:  map[int]Time{1: Millisecond + 500*Microsecond},
		RepairAt: map[int]Time{1: 60 * Millisecond},
	})
	if !res.Consistent {
		t.Fatalf("inconsistent: %+v", res.Sites)
	}
	if res.Blocked {
		t.Fatalf("still blocked after repair: %+v", res.Sites)
	}
	if !res.Aborted || res.Committed {
		t.Fatalf("recovered coordinator must abort an undecided txn: %+v", res.Sites)
	}
	// The survivors were released only after the repair.
	for _, id := range []int{2, 3} {
		if d := res.Sites[id].DecidedAt; d < 60*Millisecond {
			t.Errorf("site %d decided at %d, before the repair", id, d)
		}
	}
}

// TestRepairedCoordinatorRebroadcastsCommit: the coordinator logged COMMIT
// but crashed before any decision message left; repair re-broadcasts it.
func TestRepairedCoordinatorRebroadcastsCommit(t *testing.T) {
	// Fixed 1ms latency, 2ms stagger, n=3: XACT reaches 2 at 1ms and 3 at
	// 3ms; the votes land at 2ms and 4ms; the coordinator decides COMMIT at
	// 4ms and sends it to 2 at 4ms (in flight, survives) and to 3 at 6ms.
	// Crashing at 5ms loses the second COMMIT; the repair re-broadcasts it.
	res := RunTransaction(Config{
		N: 3, Protocol: Central2PC, Seed: 5,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		Stagger:  2 * Millisecond,
		CrashAt:  map[int]Time{1: 5 * Millisecond},
		RepairAt: map[int]Time{1: 50 * Millisecond},
	})
	if !res.Consistent {
		t.Fatalf("inconsistent: %+v", res.Sites)
	}
	if !res.Committed || res.Aborted {
		t.Fatalf("want commit everywhere: %+v", res.Sites)
	}
	for id, so := range res.Sites {
		if so.Phase != 'c' {
			t.Errorf("site %d phase %c", id, so.Phase)
		}
	}
}

// TestRepairedParticipantLearnsOutcome: a participant crashes after voting,
// the cohort commits without it (3PC waives its ack), and on repair it asks
// the cohort and adopts the commit.
func TestRepairedParticipantLearnsOutcome(t *testing.T) {
	res := RunTransaction(Config{
		N: 3, Protocol: Central3PC, Seed: 5,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		CrashAt:  map[int]Time{3: 2*Millisecond + 500*Microsecond}, // voted, not yet prepared
		RepairAt: map[int]Time{3: 40 * Millisecond},
	})
	if !res.Consistent {
		t.Fatalf("inconsistent: %+v", res.Sites)
	}
	if !res.Committed {
		t.Fatalf("cohort should commit: %+v", res.Sites)
	}
	if res.Sites[3].Phase != 'c' {
		t.Fatalf("repaired participant phase %c, want c", res.Sites[3].Phase)
	}
	if res.Sites[3].DecidedAt < 40*Millisecond {
		t.Fatalf("participant decided before its repair: %+v", res.Sites[3])
	}
}

// TestBlockedTimeTracksMTTR: the quantitative story — under 2PC the
// survivors' termination time grows linearly with the coordinator's MTTR;
// under 3PC it is constant (detection + termination protocol).
func TestBlockedTimeTracksMTTR(t *testing.T) {
	// Measure when the last SURVIVOR decided (the repaired coordinator's
	// own late decision is recovery, not blocking).
	done := func(proto Protocol, mttr Time) Time {
		res := RunTransaction(Config{
			N: 3, Protocol: proto, Seed: 5,
			LatencyMin: Millisecond, LatencyMax: Millisecond,
			CrashAt:  map[int]Time{1: Millisecond + 500*Microsecond},
			RepairAt: map[int]Time{1: Millisecond + 500*Microsecond + mttr},
		})
		if !res.Consistent {
			t.Fatalf("%s mttr=%d inconsistent", proto, mttr)
		}
		var last Time
		for id, so := range res.Sites {
			if id == 1 {
				continue
			}
			if so.DecidedAt == 0 {
				t.Fatalf("%s mttr=%d: survivor %d undecided", proto, mttr, id)
			}
			if so.DecidedAt > last {
				last = so.DecidedAt
			}
		}
		return last
	}
	d20 := done(Central2PC, 20*Millisecond)
	d80 := done(Central2PC, 80*Millisecond)
	if d80-d20 < 50*Millisecond {
		t.Errorf("2PC termination should track MTTR: done(20ms)=%d done(80ms)=%d", d20, d80)
	}
	t20 := done(Central3PC, 20*Millisecond)
	t80 := done(Central3PC, 80*Millisecond)
	if diff := t80 - t20; diff > 5*Millisecond && diff < -5*Millisecond {
		t.Errorf("3PC termination should not track MTTR: %d vs %d", t20, t80)
	}
	if t80 > d20 {
		t.Errorf("3PC (%d) should terminate before even the shortest 2PC repair (%d)", t80, d20)
	}
}
