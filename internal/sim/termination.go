package sim

// startTermination runs when a site failure impairs the commit protocol:
// the paper's backup-coordinator termination protocol for 3PC, cooperative
// status exchange (which may block) for 2PC.
func (st *site) startTermination() {
	if st.final() || st.crashed {
		return
	}
	st.terminating = true
	if !st.r.cfg.Protocol.ThreePhase() {
		st.startCooperative()
		return
	}
	backup, ok := st.electBackup()
	if !ok {
		return
	}
	if backup == st.id {
		st.runBackup()
		return
	}
	// Tell the backup to act; it may be in q and unaware of its role.
	st.send(backup, kNudge, 0)
}

// electBackup picks the lowest-numbered operational site, excluding the
// central coordinator (whose crash triggered termination in the first
// place; a recovered coordinator rejoins via the recovery protocol, not
// here).
func (st *site) electBackup() (int, bool) {
	for i := 1; i <= st.r.cfg.N; i++ {
		if st.r.cfg.Protocol.Central() && i == 1 {
			continue
		}
		if i == st.id || st.r.net.Reachable(st.id, i) {
			return i, true
		}
	}
	return 0, false
}

// onNudge makes the elected backup act.
func (st *site) onNudge() {
	if st.final() {
		// Already decided: just re-broadcast the outcome.
		kind := kAbort
		if st.phase == 'c' {
			kind = kCommit
		}
		st.broadcast(st.aliveOthers(), kind, 0)
		return
	}
	if st.r.cfg.Protocol == Quorum3PC {
		if backup, ok := st.electQuorumBackup(); ok && backup == st.id {
			st.startQuorumTermination()
		}
		return
	}
	if backup, ok := st.electBackup(); ok && backup == st.id {
		st.runBackup()
	}
}

// runBackup executes the backup coordinator procedure: phase 1 synchronizes
// every operational site to the backup's local state; phase 2 issues the
// decision from the paper's rule (commit iff the backup's state is p or c).
func (st *site) runBackup() {
	st.terminating = true
	if st.final() {
		kind := kAbort
		if st.phase == 'c' {
			kind = kCommit
		}
		st.broadcast(st.aliveOthers(), kind, 0)
		return
	}
	st.termAcks = map[int]bool{}
	if st.r.cfg.SkipBackupPhase1 {
		// A1 ablation: no synchronizing round. Unsafe if this backup then
		// crashes mid-decision broadcast.
		st.termDecide()
		return
	}
	st.broadcast(st.termTargets(), kTermState, st.phase)
	st.maybeTermPhase2()
}

// termTargets lists the operational sites the backup must synchronize.
func (st *site) termTargets() []int {
	var out []int
	for _, id := range st.aliveOthers() {
		if st.r.cfg.Protocol.Central() && id == 1 {
			continue
		}
		out = append(out, id)
	}
	return out
}

// onTermState adopts the backup coordinator's state (phase 1).
func (st *site) onTermState(m Msg) {
	if st.crashed {
		return
	}
	if st.final() {
		// Inform the backup of the decided outcome instead of acking.
		kind := kAbort
		if st.phase == 'c' {
			kind = kCommit
		}
		st.send(m.From, kind, 0)
		return
	}
	if st.r.cfg.Protocol == Quorum3PC {
		st.adoptQuorumState(m.Body)
		st.send(m.From, kTermAck, 0)
		return
	}
	switch {
	case m.Body == 'p' && st.phase == 'w':
		st.phase = 'p'
	case m.Body == 'w' && st.phase == 'p':
		// Retreat from the buffer state: no irreversible action has been
		// taken, so synchronizing backwards is safe.
		st.phase = 'w'
	}
	st.send(m.From, kTermAck, 0)
}

// onTermAckMsg collects phase-1 acknowledgements at the backup.
func (st *site) onTermAckMsg(m Msg) {
	if st.termAcks == nil || st.final() {
		return
	}
	st.termAcks[m.From] = true
	if st.r.cfg.Protocol == Quorum3PC {
		st.maybeQuorumPhase2()
		return
	}
	st.maybeTermPhase2()
}

// maybeTermPhase2 issues the decision once every operational target
// acknowledged phase 1.
func (st *site) maybeTermPhase2() {
	if st.termAcks == nil || st.final() {
		return
	}
	for _, id := range st.termTargets() {
		if !st.termAcks[id] {
			return
		}
	}
	st.termDecide()
}

// termDecide applies the decision rule for backup coordinators and
// broadcasts the outcome.
func (st *site) termDecide() {
	if st.phase == 'p' || st.phase == 'c' {
		st.decide('c')
		st.broadcast(st.termTargets(), kCommit, 0)
	} else {
		st.decide('a')
		st.broadcast(st.termTargets(), kAbort, 0)
	}
}

// --- cooperative termination (2PC) ---

// startCooperative queries every operational cohort member's state; any
// decided, unvoted, or aborted respondent resolves the uncertainty, and a
// unanimous "uncertain" leaves the site blocked.
func (st *site) startCooperative() {
	st.queried = true
	if st.statuses == nil {
		st.statuses = map[int]byte{}
	}
	st.broadcast(st.aliveOthers(), kStatusReq, 0)
	st.evaluateCooperative()
}

// onStatusReq answers with the local state letter ('c'/'a' for decided).
func (st *site) onStatusReq(m Msg) {
	st.send(m.From, kStatusRes, st.phase)
}

// onStatusRes folds a peer's state into the cooperative decision. A direct
// outcome in the reply resolves the transaction under any protocol (used by
// repaired sites re-learning their fate).
func (st *site) onStatusRes(m Msg) {
	if st.final() {
		return
	}
	switch m.Body {
	case 'c':
		st.decide('c')
		return
	case 'a':
		st.decide('a')
		return
	}
	if !st.queried {
		return
	}
	st.statuses[m.From] = m.Body
	st.evaluateCooperative()
}

// onRepair runs the recovery protocol at a repaired site. A coordinator
// with a durable decision re-broadcasts it; one that crashed before its
// commit point aborts (and broadcasts), releasing any blocked cohort. A
// participant asks the operational sites for the outcome.
func (st *site) onRepair() {
	central := st.r.cfg.Protocol.Central() && st.r.cfg.Protocol != Linear2PC
	if central && st.id == 1 && st.phase != 'p' {
		if !st.final() {
			// Crashed before the commit point (q or w): abort upon
			// recovering. A coordinator that crashed in p is in doubt like
			// any participant — the cohort may have terminated with COMMIT —
			// and falls through to the query below.
			st.decide('a')
		}
		kind := kAbort
		if st.phase == 'c' {
			kind = kCommit
		}
		st.broadcast(st.aliveOthers(), kind, 0)
		return
	}
	if st.final() {
		return
	}
	// In-doubt participant: ask the cohort.
	st.broadcast(st.aliveOthers(), kStatusReq, 0)
}

// evaluateCooperative applies the cooperative rule over the currently
// operational cohort.
func (st *site) evaluateCooperative() {
	if st.final() || !st.queried {
		return
	}
	complete := true
	for _, id := range st.aliveOthers() {
		status, ok := st.statuses[id]
		if !ok {
			complete = false
			continue
		}
		switch status {
		case 'c':
			st.decide('c')
			st.broadcast(st.aliveOthers(), kCommit, 0)
			return
		case 'a':
			st.decide('a')
			st.broadcast(st.aliveOthers(), kAbort, 0)
			return
		case 'q':
			// Someone has not voted: no site can have committed.
			st.decide('a')
			st.broadcast(st.aliveOthers(), kAbort, 0)
			return
		}
	}
	if complete {
		// Every operational site is uncertain: 2PC blocks here.
		st.blocked = true
	}
}
