package sim

// Linear 2PC (extension beyond the paper's two paradigms): the sites form a
// chain. The vote wave travels rightward (each site votes as the wave
// arrives), the last site decides, and the decision travels back leftward.
// Cheapest in messages — 2(n-1) per commit — and worst in latency — 2(n-1)
// sequential delays. Implemented failure-free for the cost experiments
// (T3/T4); its termination behavior is the ordinary blocking 2PC story.

// startLinear begins the chain at site 1.
func (st *site) startLinear() {
	if st.crashed {
		return
	}
	st.r.sim.After(st.voteDelay(), func() {
		if st.crashed || st.final() {
			return
		}
		if st.r.cfg.VoteNo[st.id] {
			st.decide('a')
			if st.r.cfg.N > 1 {
				st.send(2, kAbort, 0)
			}
			return
		}
		st.voted = true
		st.phase = 'w'
		st.send(2, kXact, 0)
	})
}

// onLinearXact handles the rightward vote wave at sites 2..n.
func (st *site) onLinearXact() {
	if st.phase != 'q' || st.voted {
		return
	}
	st.voted = true
	st.r.sim.After(st.voteDelay(), func() {
		if st.crashed || st.final() {
			return
		}
		if st.r.cfg.VoteNo[st.id] {
			st.decide('a')
			st.send(st.id-1, kAbort, 0)
			if st.id < st.r.cfg.N {
				st.send(st.id+1, kAbort, 0)
			}
			return
		}
		if st.id == st.r.cfg.N {
			// The last site completes the wave and decides.
			st.decide('c')
			st.send(st.id-1, kCommit, 0)
			return
		}
		st.phase = 'w'
		st.send(st.id+1, kXact, 0)
	})
}

// onLinearDecision propagates the decision wave leftward (commit) or in both
// directions (abort sweeping through never-engaged sites).
func (st *site) onLinearDecision(m Msg) {
	if st.final() {
		return
	}
	fromRight := m.From > st.id
	if m.Kind == kCommit {
		st.decide('c')
		if st.id > 1 && fromRight {
			st.send(st.id-1, kCommit, 0)
		}
		return
	}
	st.decide('a')
	if fromRight && st.id > 1 {
		st.send(st.id-1, kAbort, 0)
	}
	if !fromRight && st.id < st.r.cfg.N {
		st.send(st.id+1, kAbort, 0)
	}
}
