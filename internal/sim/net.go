package sim

// Msg is a simulated protocol message.
type Msg struct {
	From, To int
	Kind     string
	Body     byte // single-byte payload: a state letter where needed
}

// Net is the simulated network: point-to-point delivery with sampled
// latency, crash-stop site failures, crash notification to the survivors
// after a detection delay, and — for the experiments that step outside the
// paper's "network never fails" assumption — partitions, under which each
// side suspects the other side's sites exactly as if they had crashed.
type Net struct {
	sim         *Sim
	latMin      Time
	latMax      Time
	detectDelay Time
	down        map[int]bool
	group       map[int]int // site -> partition group (default group 0)
	handlers    map[int]func(Msg)
	suspectFn   func(observer, suspect int)

	// Counters for the message-cost experiments.
	Sent   int
	ByKind map[string]int
}

// NewNet builds a network on the simulator with per-message latency sampled
// uniformly from [latMin, latMax] and crash detection latency detectDelay.
func NewNet(s *Sim, latMin, latMax, detectDelay Time) *Net {
	return &Net{
		sim:         s,
		latMin:      latMin,
		latMax:      latMax,
		detectDelay: detectDelay,
		down:        map[int]bool{},
		group:       map[int]int{},
		handlers:    map[int]func(Msg){},
		ByKind:      map[string]int{},
	}
}

// Handle registers the message handler for a site.
func (n *Net) Handle(site int, fn func(Msg)) { n.handlers[site] = fn }

// WatchSuspicions registers the callback invoked, per (observer, suspect)
// pair, when observer is told that suspect has failed — by a real crash
// (reliably reported, per the paper) or by a partition (the observer cannot
// distinguish the two).
func (n *Net) WatchSuspicions(fn func(observer, suspect int)) { n.suspectFn = fn }

// Alive reports whether a site is operational.
func (n *Net) Alive(site int) bool { return !n.down[site] }

// Reachable reports whether two operational sites can currently exchange
// messages.
func (n *Net) Reachable(a, b int) bool {
	return !n.down[a] && !n.down[b] && n.group[a] == n.group[b]
}

// Send transmits m; it is counted even if the destination is down or
// unreachable when it arrives (the bytes still crossed the wire).
func (n *Net) Send(m Msg) {
	if n.down[m.From] {
		return // a crashed site sends nothing
	}
	n.Sent++
	n.ByKind[m.Kind]++
	delay := n.sim.Uniform(n.latMin, n.latMax)
	n.sim.After(delay, func() {
		if n.down[m.To] || n.group[m.From] != n.group[m.To] {
			return
		}
		if h := n.handlers[m.To]; h != nil {
			h(m)
		}
	})
}

// Crash fails a site at the current virtual time; every other site is
// notified after the detection delay.
func (n *Net) Crash(site int) {
	if n.down[site] {
		return
	}
	n.down[site] = true
	if n.suspectFn == nil {
		return
	}
	n.sim.After(n.detectDelay, func() {
		for observer := range n.handlers {
			if observer != site && !n.down[observer] {
				n.suspectFn(observer, site)
			}
		}
	})
}

// Partition splits the sites into groups; messages flow only within a
// group. After the detection delay each site suspects every site outside
// its group — a partition is indistinguishable from the far side crashing.
// Sites not mentioned stay in group 0.
func (n *Net) Partition(groups ...[]int) {
	n.group = map[int]int{}
	for g, members := range groups {
		for _, site := range members {
			n.group[site] = g + 1
		}
	}
	if n.suspectFn == nil {
		return
	}
	n.sim.After(n.detectDelay, func() {
		for observer := range n.handlers {
			if n.down[observer] {
				continue
			}
			for suspect := range n.handlers {
				if suspect != observer && !n.down[suspect] && n.group[observer] != n.group[suspect] {
					n.suspectFn(observer, suspect)
				}
			}
		}
	})
}

// Heal removes all partitions (suspicions are not retracted; protocols
// re-learn reachability through their own retries).
func (n *Net) Heal() { n.group = map[int]int{} }

// Repair brings a crashed site back: it can send and receive again. The
// site's protocol-level recovery is the caller's business.
func (n *Net) Repair(site int) { delete(n.down, site) }
