package sim

// Quorum-based termination (the extension sketched by the paper's [SKEE81a]
// reference, later published as Skeen's quorum-based commit protocol): when
// failures or partitions are suspected, every site abandons the normal
// central-site 3PC path and runs termination within its connectivity group.
// The elected group backup gathers the group's states and may
//
//   - propagate an already-decided outcome,
//   - COMMIT after synchronizing at least Vc sites into the buffer state p
//     (at least one site must already hold p), or
//   - ABORT after synchronizing at least Va sites into the
//     prepare-to-abort state 'b',
//
// with Vc + Va > N guaranteeing that no two groups decide differently. A
// group that can reach neither quorum blocks — the price of safety under
// partitions, which plain 3PC cannot offer (see the A3 experiment).
const (
	kQGather  = "Q-GATHER"  // backup: report your state
	kQState   = "Q-STATE"   // reply: state letter
	kQBlocked = "Q-BLOCKED" // backup: the group lacks a quorum
)

// startQuorumTermination elects the group backup (lowest reachable site)
// and, at the backup, begins the gather round.
func (st *site) startQuorumTermination() {
	if st.final() || st.crashed {
		return
	}
	st.terminating = true
	backup, ok := st.electQuorumBackup()
	if !ok {
		return
	}
	if backup != st.id {
		st.send(backup, kNudge, 0)
		return
	}
	st.qStates = map[int]byte{st.id: st.phase}
	st.termAcks = nil
	st.qTarget = 0
	st.broadcast(st.aliveOthers(), kQGather, 0)
	st.evaluateQuorum()
}

// electQuorumBackup picks the lowest-numbered reachable site (self
// included); unlike the central-site termination there is no coordinator
// exclusion — the coordinator participates in its group's quorum.
func (st *site) electQuorumBackup() (int, bool) {
	for i := 1; i <= st.r.cfg.N; i++ {
		if i == st.id || st.r.net.Reachable(st.id, i) {
			return i, true
		}
	}
	return 0, false
}

// onQGather reports the local state to the group backup.
func (st *site) onQGather(m Msg) {
	st.terminating = true
	st.send(m.From, kQState, st.phase)
}

// onQState folds a group member's state into the backup's tally.
func (st *site) onQState(m Msg) {
	if st.qStates == nil || st.final() {
		return
	}
	st.qStates[m.From] = m.Body
	st.evaluateQuorum()
}

// evaluateQuorum applies the quorum decision rule once the whole group has
// reported.
func (st *site) evaluateQuorum() {
	if st.final() || st.qStates == nil || st.qTarget != 0 {
		return
	}
	group := st.aliveOthers()
	for _, id := range group {
		if _, ok := st.qStates[id]; !ok {
			return // gather still in progress
		}
	}
	st.qStates[st.id] = st.phase

	counts := map[byte]int{}
	groupWeight := 0
	for id, state := range st.qStates {
		counts[state]++
		groupWeight += st.weight(id)
	}
	switch {
	case counts['c'] > 0:
		st.decide('c')
		st.broadcast(group, kCommit, 0)
	case counts['a'] > 0:
		st.decide('a')
		st.broadcast(group, kAbort, 0)
	case groupWeight >= st.quorum() && counts['p'] > 0:
		// Commit path: synchronize the group into p, then commit once a
		// commit quorum (by weight) has acknowledged.
		st.beginQuorumSync('p', group)
	case groupWeight >= st.quorum():
		// Abort path: synchronize into prepare-to-abort, then abort.
		st.beginQuorumSync('b', group)
	default:
		// Minority group: neither quorum is reachable. Block — plain 3PC
		// would guess here and lose atomicity.
		st.blocked = true
		st.broadcast(group, kQBlocked, 0)
	}
}

// beginQuorumSync runs phase 1 of the backup protocol toward the target
// state, counting acknowledgements against the quorum.
func (st *site) beginQuorumSync(target byte, group []int) {
	st.qTarget = target
	st.termAcks = map[int]bool{st.id: true}
	st.adoptQuorumState(target)
	st.broadcast(group, kTermState, target)
	st.maybeQuorumPhase2()
}

// adoptQuorumState applies a synchronization target locally.
func (st *site) adoptQuorumState(target byte) {
	switch {
	case target == 'p' && (st.phase == 'w' || st.phase == 'b'):
		st.phase = 'p'
	case target == 'b' && (st.phase == 'w' || st.phase == 'p' || st.phase == 'q'):
		st.phase = 'b'
	}
}

// maybeQuorumPhase2 issues the decision once quorum-many sites acknowledged
// the synchronization.
func (st *site) maybeQuorumPhase2() {
	if st.final() || st.qTarget == 0 || st.termAcks == nil {
		return
	}
	ackWeight := 0
	for id := range st.termAcks {
		ackWeight += st.weight(id)
	}
	if ackWeight < st.quorum() {
		return
	}
	group := st.aliveOthers()
	if st.qTarget == 'p' {
		st.decide('c')
		st.broadcast(group, kCommit, 0)
	} else {
		st.decide('a')
		st.broadcast(group, kAbort, 0)
	}
}
