package sim

// startCoordinator begins the central-site protocol at site 1: distribute
// the transaction, collect a response from every slave (property 4), then
// decide (2PC) or run the prepare round first (3PC).
func (st *site) startCoordinator() {
	if st.crashed {
		return
	}
	st.responses = map[int]byte{}
	st.ownNo = st.r.cfg.VoteNo[st.id]
	st.phase = 'w'
	st.broadcast(st.r.others(st.id), kXact, 0)
}

// startPeer begins the decentralized protocol at every site: receive the
// transaction from the environment, do the local vote work, then broadcast
// the vote.
func (st *site) startPeer() {
	if st.crashed {
		return
	}
	st.responses = map[int]byte{}
	st.r.sim.After(st.voteDelay(), st.castPeerVote)
}

func (st *site) castPeerVote() {
	if st.crashed || st.final() {
		return
	}
	if st.r.cfg.VoteNo[st.id] {
		st.voted = true
		st.decide('a')
		st.broadcast(st.r.others(st.id), kNo, 0)
		return
	}
	st.voted = true
	st.phase = 'w'
	st.broadcast(st.r.others(st.id), kYes, 0)
	st.maybeVoteRoundDone()
}

// voteDelay samples the local pre-vote work duration.
func (st *site) voteDelay() Time {
	return st.r.sim.Uniform(st.r.cfg.VoteDelayMin, st.r.cfg.VoteDelayMax)
}

// onMsg dispatches a delivered message at an operational site.
func (st *site) onMsg(m Msg) {
	if st.crashed {
		return
	}
	if st.r.cfg.Protocol == Linear2PC {
		switch m.Kind {
		case kXact:
			st.onLinearXact()
		case kCommit, kAbort:
			st.onLinearDecision(m)
		}
		return
	}
	switch m.Kind {
	case kXact:
		st.onXact(m)
	case kYes, kNo:
		st.onVote(m)
	case kPrepare:
		st.onPrepare(m)
	case kAck:
		st.onAckMsg(m)
	case kCommit:
		st.decide('c')
	case kAbort:
		st.decide('a')
	case kNudge:
		st.onNudge()
	case kTermState:
		st.onTermState(m)
	case kTermAck:
		st.onTermAckMsg(m)
	case kStatusReq:
		st.onStatusReq(m)
	case kStatusRes:
		st.onStatusRes(m)
	case kQGather:
		st.onQGather(m)
	case kQState:
		st.onQState(m)
	case kQBlocked:
		st.blocked = true
	}
}

// onXact is the slave's vote in the central protocol, cast after the local
// vote work completes.
func (st *site) onXact(m Msg) {
	if st.phase != 'q' || st.voted {
		return
	}
	st.voted = true
	st.r.sim.After(st.voteDelay(), func() {
		if st.crashed || st.final() {
			return
		}
		if st.r.cfg.VoteNo[st.id] {
			st.decide('a')
			st.send(m.From, kNo, 0)
			return
		}
		st.phase = 'w'
		st.send(m.From, kYes, 0)
	})
}

// onVote collects vote-round responses: at the central coordinator, from
// the slaves; at a decentralized peer, from every other peer.
func (st *site) onVote(m Msg) {
	if st.responses == nil || st.final() {
		return
	}
	if m.Kind == kYes {
		st.responses[m.From] = 'y'
	} else {
		st.responses[m.From] = 'n'
	}
	st.maybeVoteRoundDone()
}

// maybeVoteRoundDone checks whether a response exists for every expected
// voter and advances the protocol. The central coordinator may waive a
// crashed slave's missing vote as a NO (only the coordinator decides, so
// this is safe); a decentralized peer must NOT — the crashed peer's vote may
// have reached others, who may already have decided — and instead leaves the
// gap for the termination protocol.
func (st *site) maybeVoteRoundDone() {
	if st.final() || st.phase == 'p' || st.responses == nil {
		return
	}
	central := st.r.cfg.Protocol.Central()
	if !central && !st.voted {
		return // still doing the local vote work
	}
	anyNo := st.ownNo
	for _, id := range st.r.others(st.id) {
		v, ok := st.responses[id]
		if !ok {
			if st.r.net.Reachable(st.id, id) {
				return // still waiting
			}
			if st.r.cfg.Protocol == Quorum3PC {
				return // no waivers: quorum termination resolves the gap
			}
			if central {
				// Crashed without a vote reaching the coordinator: it will
				// abort on recovery, so abort.
				anyNo = true
				continue
			}
			return // decentralized: termination resolves the uncertainty
		}
		if v == 'n' {
			anyNo = true
		}
	}
	if anyNo {
		st.decide('a')
		if central || st.r.anyCrashed {
			st.broadcast(st.aliveOthers(), kAbort, 0)
		}
		return
	}
	// Unanimous YES.
	if !st.r.cfg.Protocol.ThreePhase() {
		st.decide('c')
		if central || st.r.anyCrashed {
			st.broadcast(st.aliveOthers(), kCommit, 0)
		}
		return
	}
	// 3PC: enter the buffer state.
	st.phase = 'p'
	if central {
		st.acks = map[int]bool{}
		st.broadcast(st.r.others(st.id), kPrepare, 0)
	} else {
		st.broadcast(st.r.others(st.id), kPrepare, 0)
		st.maybePrepareRoundDone()
	}
}

// onPrepare moves a site into the buffer state.
func (st *site) onPrepare(m Msg) {
	if st.r.cfg.Protocol.Central() {
		if st.phase == 'w' {
			st.phase = 'p'
			st.send(m.From, kAck, 0)
		} else if st.phase == 'p' {
			st.send(m.From, kAck, 0)
		}
		return
	}
	// Decentralized: a peer may receive prepares while still collecting
	// votes; note them and check both rounds.
	if st.final() {
		return
	}
	if st.prepares == nil {
		st.prepares = map[int]bool{}
	}
	st.prepares[m.From] = true
	st.maybePrepareRoundDone()
}

// maybePrepareRoundDone commits a decentralized 3PC peer once a prepare
// from every peer arrived. A crashed peer's missing prepare is not waived:
// the site stays in p and the termination protocol finishes the job.
func (st *site) maybePrepareRoundDone() {
	if st.phase != 'p' {
		return
	}
	for _, id := range st.r.others(st.id) {
		if !st.prepares[id] {
			return
		}
	}
	st.decide('c')
	if st.r.anyCrashed {
		st.broadcast(st.aliveOthers(), kCommit, 0)
	}
}

// onAckMsg collects prepare acknowledgements at the central 3PC coordinator.
func (st *site) onAckMsg(m Msg) {
	if st.acks == nil || st.final() {
		return
	}
	st.acks[m.From] = true
	st.maybeAllAcks()
}

func (st *site) maybeAllAcks() {
	if st.phase != 'p' || st.acks == nil {
		return
	}
	for _, id := range st.r.others(st.id) {
		if st.acks[id] {
			continue
		}
		if st.r.cfg.Protocol == Quorum3PC {
			return // no waivers: quorum termination resolves the gap
		}
		if st.r.net.Reachable(st.id, id) {
			return
		}
	}
	st.decide('c')
	st.broadcast(st.aliveOthers(), kCommit, 0)
}

// onSuspect reacts to the report that another site failed (or was cut off
// by a partition — indistinguishable).
func (st *site) onSuspect(crashed int) {
	if st.final() || st.crashed {
		return
	}
	if st.r.cfg.Protocol == Quorum3PC {
		// Every site — coordinator included — abandons the normal path and
		// runs the quorum termination protocol within its group.
		st.startQuorumTermination()
		return
	}
	central := st.r.cfg.Protocol.Central()
	if central && st.id == 1 {
		// Coordinator: re-evaluate vote and ack collection.
		st.maybeVoteRoundDone()
		st.maybeAllAcks()
		return
	}
	if !central {
		st.maybeVoteRoundDone()
		// The prepare round is NOT waived: a missing prepare keeps us in p
		// and the termination protocol finishes the job.
		st.startTermination()
		return
	}
	// Central participant: only a coordinator failure matters, unless a
	// termination attempt is underway and its backup died.
	if crashed == 1 || st.terminating {
		st.startTermination()
	}
}
