package shard

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestDefaultDeterministic: every node computing the default map from the
// same site list must get the identical map — including when the site list
// arrives in a different order.
func TestDefaultDeterministic(t *testing.T) {
	a := Default([]int{1, 2, 3, 4}, 4)
	b := Default([]int{4, 2, 1, 3}, 4)
	if a.Format() != b.Format() {
		t.Fatalf("default map differs across nodes:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a", "user:42", "zzzzzz"} {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestDefaultCoverage: the map covers the whole hash space with no gaps or
// overlaps, for a spread of cluster sizes and shard counts, and every key is
// owned by exactly one shard.
func TestDefaultCoverage(t *testing.T) {
	for _, sites := range [][]int{{1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5}, {7, 3, 11}} {
		for _, per := range []int{1, 2, 8} {
			m := Default(sites, per)
			if err := m.Validate(); err != nil {
				t.Fatalf("sites=%v per=%d: %v", sites, per, err)
			}
			if got, want := len(m.Shards), len(sites)*per; got != want {
				t.Fatalf("sites=%v per=%d: %d shards, want %d", sites, per, got, want)
			}
			// Boundary points: each shard's Start and End, and their
			// neighbours, must land in exactly one shard by linear scan.
			for _, s := range m.Shards {
				for _, h := range []uint64{s.Start, s.End, s.Start + 1, s.End - 1} {
					owners := 0
					for _, sh := range m.Shards {
						if sh.Contains(h) {
							owners++
						}
					}
					if owners != 1 {
						t.Fatalf("sites=%v per=%d: hash %#x owned by %d shards", sites, per, h, owners)
					}
					if got := m.ShardAt(h); !got.Contains(h) {
						t.Fatalf("ShardAt(%#x) returned non-containing shard %+v", h, got)
					}
				}
			}
		}
	}
	// Many keys: the binary-search lookup agrees with a linear scan.
	m := Default([]int{1, 2, 3, 4}, 4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		h := Hash(key)
		var want Shard
		found := false
		for _, sh := range m.Shards {
			if sh.Contains(h) {
				want, found = sh, true
				break
			}
		}
		if !found {
			t.Fatalf("hash of %q not covered", key)
		}
		if got := m.ShardOf(key); got.ID != want.ID {
			t.Fatalf("ShardOf(%q) = shard %d, linear scan says %d", key, got.ID, want.ID)
		}
	}
}

// TestFormatParseRoundTrip: the textual map file reproduces the map exactly.
func TestFormatParseRoundTrip(t *testing.T) {
	m := Default([]int{1, 2, 3}, 2)
	m.Version = 7
	parsed, err := Parse(strings.NewReader("# a comment\n\n" + m.Format()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Format() != m.Format() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", parsed.Format(), m.Format())
	}
	if parsed.Version != 7 {
		t.Fatalf("version = %d, want 7", parsed.Version)
	}
}

// TestParseRejectsBadMaps: structural violations are parse errors.
func TestParseRejectsBadMaps(t *testing.T) {
	for name, text := range map[string]string{
		"no version": "shard 0 0000000000000000 ffffffffffffffff 1\n",
		"gap": "version 1\n" +
			"shard 0 0000000000000000 00000000000000ff 1\n" +
			"shard 1 0000000000000200 ffffffffffffffff 2\n",
		"overlap": "version 1\n" +
			"shard 0 0000000000000000 00000000000000ff 1\n" +
			"shard 1 0000000000000080 ffffffffffffffff 2\n",
		"uncovered tail": "version 1\n" +
			"shard 0 0000000000000000 00000000000000ff 1\n",
		"bad owner": "version 1\nshard 0 0000000000000000 ffffffffffffffff 0\n",
		"dup id": "version 1\n" +
			"shard 0 0000000000000000 00000000000000ff 1\n" +
			"shard 0 0000000000000100 ffffffffffffffff 2\n",
		"junk": "version 1\nshrd 0 0 1 1\n",
	} {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted a bad map", name)
		}
	}
}

// TestVersionMismatch: a request stamped with a different map version is
// rejected; version 0 (no map) passes for compatibility.
func TestVersionMismatch(t *testing.T) {
	m := Default([]int{1, 2}, 1)
	m.Version = 3
	if err := m.CheckVersion(3); err != nil {
		t.Fatalf("same version rejected: %v", err)
	}
	if err := m.CheckVersion(0); err != nil {
		t.Fatalf("zero version rejected: %v", err)
	}
	err := m.CheckVersion(4)
	if err == nil {
		t.Fatal("version 4 accepted against map version 3")
	}
	if !strings.Contains(err.Error(), "have 3, got 4") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
	if vm, ok := err.(ErrVersionMismatch); !ok || vm.Have != 3 || vm.Got != 4 {
		t.Fatalf("error not an ErrVersionMismatch with fields: %#v", vm)
	}
	var nilMap *Map
	if err := nilMap.CheckVersion(9); err != nil {
		t.Fatalf("nil map rejected a version: %v", err)
	}
}

// TestRouterFanOut: keys in the same shard route to one participant; keys in
// different shards to several — and the participant set is exactly the owner
// set, sorted.
func TestRouterFanOut(t *testing.T) {
	m := Default([]int{1, 2, 3, 4}, 1)
	r := &Router{Map: m}

	// Collect keys per owner by sampling.
	byOwner := map[int][]string{}
	for i := 0; len(byOwner[1]) < 3 || len(byOwner[2]) < 3 || len(byOwner[3]) < 3 || len(byOwner[4]) < 3; i++ {
		k := fmt.Sprintf("sample-%d", i)
		o := r.Site(k)
		byOwner[o] = append(byOwner[o], k)
	}

	// Single-shard transaction: all keys owned by site 2 -> one participant.
	single := r.Participants(byOwner[2][:3])
	if len(single) != 1 || single[0] != 2 {
		t.Fatalf("single-shard participants = %v, want [2]", single)
	}
	if g := r.Group(byOwner[2][:3]); len(g) != 1 || len(g[2]) != 3 {
		t.Fatalf("single-shard group = %v", g)
	}

	// Cross-shard transaction: one key each at sites 3, 1, 4 -> three
	// participants, sorted.
	cross := r.Participants([]string{byOwner[3][0], byOwner[1][0], byOwner[4][0]})
	if len(cross) != 3 || cross[0] != 1 || cross[1] != 3 || cross[2] != 4 {
		t.Fatalf("cross-shard participants = %v, want [1 3 4]", cross)
	}
}

// TestDefaultBalance: with many shards, key ownership spreads over every
// site (a smoke check that the hash and the ranges interact sanely).
func TestDefaultBalance(t *testing.T) {
	m := Default([]int{1, 2, 3, 4}, 8)
	counts := map[int]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("user:%d", i))]++
	}
	for site := 1; site <= 4; site++ {
		if counts[site] < n/10 {
			t.Fatalf("site %d owns only %d/%d keys: %v", site, counts[site], n, counts)
		}
	}
}

// TestLastShardEndsAtMax pins the exact coverage of the top of the hash
// space (a regression guard for off-by-one range arithmetic).
func TestLastShardEndsAtMax(t *testing.T) {
	for _, per := range []int{1, 3} {
		m := Default([]int{1, 2, 3}, per)
		last := m.Shards[len(m.Shards)-1]
		if last.End != math.MaxUint64 {
			t.Fatalf("last shard ends at %#x", last.End)
		}
		if got := m.ShardAt(math.MaxUint64); got.ID != last.ID {
			t.Fatalf("MaxUint64 owned by shard %d, want %d", got.ID, last.ID)
		}
	}
}
