// Package shard is the placement layer of the store: a versioned shard map
// that partitions the keyspace into contiguous hash ranges and assigns each
// range to an owner site, plus a router that turns key-addressed client
// operations into site-addressed data-plane calls.
//
// The map is static configuration shared by every node of a deployment: all
// nodes must hold byte-identical maps of the same version, which is why the
// default map is a pure function of the site list and every data-plane
// request carries the sender's map version for the receiver to check. A
// transaction's participant set is exactly the set of owner sites of the
// shards it touched — a single-shard transaction engages one site and pays
// no distributed commit at all.
package shard

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Hash maps a key to its position in the 64-bit hash ring (FNV-1a).
func Hash(key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	return h.Sum64()
}

// Shard is one contiguous hash range [Start, End] (inclusive on both ends)
// owned by a single site.
type Shard struct {
	ID    int
	Start uint64
	End   uint64
	Owner int
}

// Contains reports whether the hash point falls in this shard's range.
func (s Shard) Contains(h uint64) bool { return s.Start <= h && h <= s.End }

// Map is a versioned partition of the whole 64-bit hash space. Shards are
// sorted by Start and cover the space exactly: no gaps, no overlaps.
type Map struct {
	Version uint64
	Shards  []Shard
}

// ErrVersionMismatch is returned when two nodes disagree on the shard map
// version; routing decisions made under different maps must not mix.
type ErrVersionMismatch struct {
	Have, Got uint64
}

func (e ErrVersionMismatch) Error() string {
	return fmt.Sprintf("shard: map version mismatch (have %d, got %d)", e.Have, e.Got)
}

// CheckVersion rejects a request stamped with a different map version. A
// zero version on either side means "no map" and is not checked, so
// unsharded deployments keep working.
func (m *Map) CheckVersion(got uint64) error {
	if m == nil || m.Version == 0 || got == 0 || m.Version == got {
		return nil
	}
	return ErrVersionMismatch{Have: m.Version, Got: got}
}

// ShardOf returns the shard owning the key.
func (m *Map) ShardOf(key string) Shard { return m.ShardAt(Hash(key)) }

// ShardAt returns the shard owning a hash point.
func (m *Map) ShardAt(h uint64) Shard {
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].End >= h })
	if i == len(m.Shards) {
		// Validate guarantees full coverage; tolerate a malformed map by
		// clamping to the last shard rather than panicking on a lookup.
		i = len(m.Shards) - 1
	}
	return m.Shards[i]
}

// Owner returns the site owning the key.
func (m *Map) Owner(key string) int { return m.ShardOf(key).Owner }

// Sites returns the sorted set of distinct owner sites.
func (m *Map) Sites() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range m.Shards {
		if !seen[s.Owner] {
			seen[s.Owner] = true
			out = append(out, s.Owner)
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks the structural invariants: at least one shard, shards
// sorted by Start, ranges contiguous from 0 to MaxUint64 with no gaps or
// overlaps, positive owners, distinct IDs.
func (m *Map) Validate() error {
	if m == nil || len(m.Shards) == 0 {
		return fmt.Errorf("shard: empty map")
	}
	ids := map[int]bool{}
	var next uint64
	for i, s := range m.Shards {
		if s.Owner < 1 {
			return fmt.Errorf("shard: shard %d has bad owner %d", s.ID, s.Owner)
		}
		if ids[s.ID] {
			return fmt.Errorf("shard: duplicate shard ID %d", s.ID)
		}
		ids[s.ID] = true
		if s.Start != next {
			return fmt.Errorf("shard: range gap or overlap at shard %d: starts at %#x, want %#x", s.ID, s.Start, next)
		}
		if s.End < s.Start {
			return fmt.Errorf("shard: shard %d has inverted range", s.ID)
		}
		if i == len(m.Shards)-1 {
			if s.End != math.MaxUint64 {
				return fmt.Errorf("shard: last shard ends at %#x, want %#x", s.End, uint64(math.MaxUint64))
			}
		} else {
			if s.End == math.MaxUint64 {
				return fmt.Errorf("shard: shard %d covers the end but is not last", s.ID)
			}
			next = s.End + 1
		}
	}
	return nil
}

// Default builds the deterministic default map for a deployment: the hash
// space is split into len(sites)*shardsPerSite equal ranges and owners are
// assigned round-robin over the sorted site list. Every node that knows the
// same site list computes the identical map, so no map distribution
// mechanism is needed for static clusters.
func Default(sites []int, shardsPerSite int) *Map {
	if shardsPerSite < 1 {
		shardsPerSite = 1
	}
	sorted := append([]int(nil), sites...)
	sort.Ints(sorted)
	n := len(sorted) * shardsPerSite
	if n == 0 {
		return &Map{Version: 1}
	}
	width := uint64(math.MaxUint64)/uint64(n) + 1
	m := &Map{Version: 1}
	var start uint64
	for i := 0; i < n; i++ {
		end := uint64(math.MaxUint64)
		if i < n-1 {
			end = start + width - 1
		}
		m.Shards = append(m.Shards, Shard{ID: i, Start: start, End: end, Owner: sorted[i%len(sorted)]})
		start = end + 1
	}
	return m
}

// Format renders the map in the textual shard-map file format:
//
//	version <v>
//	shard <id> <start-hex> <end-hex> <owner-site>
//	...
//
// one shard per line, ranges in hex, sorted by start.
func (m *Map) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "version %d\n", m.Version)
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "shard %d %016x %016x %d\n", s.ID, s.Start, s.End, s.Owner)
	}
	return b.String()
}

// Parse reads the textual format produced by Format. Blank lines and
// #-comments are allowed. The parsed map is validated.
func Parse(r io.Reader) (*Map, error) {
	m := &Map{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "version":
			if len(f) != 2 {
				return nil, fmt.Errorf("shard: line %d: want \"version <v>\"", line)
			}
			v, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad version: %v", line, err)
			}
			m.Version = v
		case "shard":
			if len(f) != 5 {
				return nil, fmt.Errorf("shard: line %d: want \"shard <id> <start> <end> <owner>\"", line)
			}
			id, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad shard id: %v", line, err)
			}
			start, err := strconv.ParseUint(f[2], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad start: %v", line, err)
			}
			end, err := strconv.ParseUint(f[3], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad end: %v", line, err)
			}
			owner, err := strconv.Atoi(f[4])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad owner: %v", line, err)
			}
			m.Shards = append(m.Shards, Shard{ID: id, Start: start, End: end, Owner: owner})
		default:
			return nil, fmt.Errorf("shard: line %d: unknown directive %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m.Version == 0 {
		return nil, fmt.Errorf("shard: map file missing version")
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Start < m.Shards[j].Start })
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load parses a shard-map file from disk.
func Load(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Router turns key-addressed operations into site-addressed ones under one
// shard map.
type Router struct {
	Map *Map
}

// Site returns the owner site for a key.
func (r *Router) Site(key string) int { return r.Map.Owner(key) }

// Participants returns the sorted set of owner sites for a key set — the
// exact commit cohort of a transaction that touched those keys.
func (r *Router) Participants(keys []string) []int {
	seen := map[int]bool{}
	var out []int
	for _, k := range keys {
		o := r.Map.Owner(k)
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}

// Group buckets keys by owner site, preserving per-site key order — the
// fan-out plan of a multi-key operation.
func (r *Router) Group(keys []string) map[int][]string {
	out := map[int][]string{}
	for _, k := range keys {
		o := r.Map.Owner(k)
		out[o] = append(out[o], k)
	}
	return out
}
