package core

import (
	"fmt"
	"sort"
	"strings"

	"nbcommit/internal/protocol"
)

// ViolationKind distinguishes the two conditions of the fundamental
// nonblocking theorem.
type ViolationKind int

const (
	// MixedConcurrency: the state's concurrency set contains both an abort
	// and a commit state (condition 1 of the theorem).
	MixedConcurrency ViolationKind = iota
	// NoncommittableSeesCommit: the state is noncommittable and its
	// concurrency set contains a commit state (condition 2).
	NoncommittableSeesCommit
)

// String names the violated condition.
func (k ViolationKind) String() string {
	switch k {
	case MixedConcurrency:
		return "concurrency set contains both an abort and a commit state"
	case NoncommittableSeesCommit:
		return "noncommittable state whose concurrency set contains a commit state"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation records one local state that breaks the fundamental nonblocking
// theorem, together with the offending concurrency set.
type Violation struct {
	Kind  ViolationKind
	State LocalState
	Set   *CSet
}

// String renders e.g.
// "s2:w blocks: noncommittable state whose concurrency set contains a commit state; CS(s2:w) = {a, c, q, w}".
func (v Violation) String() string {
	return fmt.Sprintf("%s blocks: %s; %s", v.State, v.Kind, v.Set)
}

// TheoremReport is the outcome of checking the fundamental nonblocking
// theorem against a protocol's reachable state graph.
type TheoremReport struct {
	Protocol   string
	Analysis   *Analysis
	Violations []Violation
}

// Nonblocking reports whether the protocol satisfies both conditions of the
// theorem at every site: operational sites can always terminate the
// transaction consistently using local state alone, whatever sites have
// failed.
func (r *TheoremReport) Nonblocking() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r *TheoremReport) String() string {
	if r.Nonblocking() {
		return fmt.Sprintf("%s: NONBLOCKING (both theorem conditions hold at every site)", r.Protocol)
	}
	lines := make([]string, 0, len(r.Violations)+1)
	lines = append(lines, fmt.Sprintf("%s: BLOCKING (%d violations)", r.Protocol, len(r.Violations)))
	for _, v := range r.Violations {
		lines = append(lines, "  "+v.String())
	}
	return strings.Join(lines, "\n")
}

// CheckTheorem evaluates the fundamental nonblocking theorem: a protocol is
// nonblocking if and only if, at every participating site,
//
//  1. there exists no local state whose concurrency set contains both an
//     abort and a commit state, and
//  2. there exists no noncommittable state whose concurrency set contains a
//     commit state.
//
// Violations are reported per occupied local state, in deterministic order.
func CheckTheorem(g *Graph) *TheoremReport {
	a := Analyze(g)
	r := &TheoremReport{Protocol: g.Protocol.Name, Analysis: a}

	var locals []LocalState
	for l := range a.Sets {
		locals = append(locals, l)
	}
	sort.Slice(locals, func(i, j int) bool {
		if locals[i].Site != locals[j].Site {
			return locals[i].Site < locals[j].Site
		}
		return locals[i].State < locals[j].State
	})
	for _, l := range locals {
		cs := a.Sets[l]
		hasCommit := a.ContainsCommit(cs)
		hasAbort := a.ContainsAbort(cs)
		if hasCommit && hasAbort {
			r.Violations = append(r.Violations, Violation{Kind: MixedConcurrency, State: l, Set: cs})
		}
		if hasCommit && !a.Committable[l] {
			r.Violations = append(r.Violations, Violation{Kind: NoncommittableSeesCommit, State: l, Set: cs})
		}
	}
	return r
}

// CheckResilience evaluates the corollary to the fundamental theorem: a
// commit protocol is nonblocking with respect to k-1 site failures iff there
// is a subset of k sites all of which obey both conditions of the theorem.
// It returns the largest set of sites at which every occupied local state
// satisfies both conditions; the protocol tolerates len(result)-1 failures
// among... — precisely, it remains nonblocking as long as one site of the
// returned set remains operational.
func CheckResilience(g *Graph) []protocol.SiteID {
	r := CheckTheorem(g)
	bad := map[protocol.SiteID]bool{}
	for _, v := range r.Violations {
		bad[v.State.Site] = true
	}
	var good []protocol.SiteID
	for i := 1; i <= g.Protocol.N(); i++ {
		if !bad[protocol.SiteID(i)] {
			good = append(good, protocol.SiteID(i))
		}
	}
	return good
}

// LemmaViolation records a violation of the paper's lemma for protocols
// synchronous within one state transition.
type LemmaViolation struct {
	State protocol.StateID
	Kind  ViolationKind
	// Adjacent are the offending neighbor states.
	Adjacent []protocol.StateID
}

// String renders the violation.
func (v LemmaViolation) String() string {
	parts := make([]string, len(v.Adjacent))
	for i, s := range v.Adjacent {
		parts[i] = string(s)
	}
	return fmt.Sprintf("state %s: %s (neighbors: %s)", v.State, v.Kind, strings.Join(parts, ", "))
}

// CheckLemma applies the lemma (slide 33) to a single canonical automaton:
// a protocol which is synchronous within one state transition is nonblocking
// iff (i) it contains no local state adjacent to both a commit and an abort
// state, and (ii) it contains no noncommittable state adjacent to a commit
// state. Adjacency is neighborhood in the (undirected) state diagram;
// committability is evaluated at the skeleton level, where, under synchrony
// within one transition, the concurrency set of s is s plus its neighbors.
func CheckLemma(a *protocol.Automaton) []LemmaViolation {
	yes := votedYesStates(a)
	neighbors := func(s protocol.StateID) []protocol.StateID {
		set := map[protocol.StateID]bool{}
		for _, t := range a.Transitions {
			if t.From == s {
				set[t.To] = true
			}
			if t.To == s {
				set[t.From] = true
			}
		}
		out := make([]protocol.StateID, 0, len(set))
		for n := range set {
			out = append(out, n)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	// Skeleton committability: CS(s) = {s} ∪ neighbors(s); s is committable
	// iff every member has voted yes.
	committable := func(s protocol.StateID) bool {
		if !yes[s] {
			return false
		}
		for _, n := range neighbors(s) {
			if !yes[n] {
				return false
			}
		}
		return true
	}

	var out []LemmaViolation
	ids := a.StateIDs()
	for _, s := range ids {
		if _, reachable := yes[s]; !reachable {
			continue
		}
		var commits, aborts []protocol.StateID
		for _, n := range neighbors(s) {
			switch a.States[n] {
			case protocol.KindCommit:
				commits = append(commits, n)
			case protocol.KindAbort:
				aborts = append(aborts, n)
			}
		}
		if len(commits) > 0 && len(aborts) > 0 {
			out = append(out, LemmaViolation{
				State: s, Kind: MixedConcurrency,
				Adjacent: append(append([]protocol.StateID{}, aborts...), commits...),
			})
		}
		if len(commits) > 0 && !committable(s) {
			out = append(out, LemmaViolation{State: s, Kind: NoncommittableSeesCommit, Adjacent: commits})
		}
	}
	return out
}

// Decision is the outcome chosen for a transaction.
type Decision int

const (
	// DecideAbort terminates the transaction by aborting at all operational
	// sites.
	DecideAbort Decision = iota
	// DecideCommit terminates the transaction by committing at all
	// operational sites.
	DecideCommit
)

// String returns "abort" or "commit".
func (d Decision) String() string {
	if d == DecideCommit {
		return "commit"
	}
	return "abort"
}

// TerminationRule is the paper's decision rule for backup coordinators
// (slide 39): if the concurrency set for the current state of the backup
// coordinator contains a commit state, the transaction is committed;
// otherwise it is aborted. For the canonical 3PC this commits from {p, c}
// and aborts from {q, w, a} (slide 40).
func TerminationRule(a *Analysis, site protocol.SiteID, s protocol.StateID) (Decision, error) {
	l := LocalState{Site: site, State: s}
	aut, err := a.Graph.Protocol.Site(site)
	if err != nil {
		return DecideAbort, err
	}
	k, err := aut.Kind(s)
	if err != nil {
		return DecideAbort, err
	}
	// A backup already in a final state dictates its own outcome.
	switch k {
	case protocol.KindCommit:
		return DecideCommit, nil
	case protocol.KindAbort:
		return DecideAbort, nil
	}
	cs, ok := a.Sets[l]
	if !ok {
		return DecideAbort, fmt.Errorf("core: site %d never occupies state %q", int(site), s)
	}
	if a.ContainsCommit(cs) {
		return DecideCommit, nil
	}
	return DecideAbort, nil
}
