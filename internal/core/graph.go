// Package core implements the analysis machinery of Skeen, "Nonblocking
// Commit Protocols" (SIGMOD 1981): reachable global state graphs,
// concurrency sets, committable states, the fundamental nonblocking theorem
// with its single-transition-synchrony lemma and k-resilience corollary, and
// the buffer-state synthesis method that turns blocking protocols into
// nonblocking ones (2PC into 3PC).
package core

import (
	"fmt"
	"sort"
	"strings"

	"nbcommit/internal/protocol"
)

// MsgBag is a multiset of outstanding network messages. The global state of
// a distributed transaction is a state vector of local states plus the
// outstanding messages in the network; MsgBag is the latter half.
type MsgBag map[protocol.Msg]int

// Clone returns a deep copy of the bag.
func (b MsgBag) Clone() MsgBag {
	out := make(MsgBag, len(b))
	for m, c := range b {
		out[m] = c
	}
	return out
}

// Add inserts count copies of m.
func (b MsgBag) Add(m protocol.Msg, count int) {
	if count == 0 {
		return
	}
	b[m] += count
	if b[m] == 0 {
		delete(b, m)
	}
}

// Count returns the multiplicity of m.
func (b MsgBag) Count(m protocol.Msg) int { return b[m] }

// Size returns the total number of outstanding messages.
func (b MsgBag) Size() int {
	n := 0
	for _, c := range b {
		n += c
	}
	return n
}

// key returns a canonical encoding of the bag, suitable for state
// deduplication.
func (b MsgBag) key() string {
	if len(b) == 0 {
		return ""
	}
	parts := make([]string, 0, len(b))
	for m, c := range b {
		parts = append(parts, fmt.Sprintf("%s*%d", m, c))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the bag deterministically.
func (b MsgBag) String() string {
	k := b.key()
	if k == "" {
		return "{}"
	}
	return "{" + k + "}"
}

// Node is one reachable global state.
type Node struct {
	// Locals[i] is the local state of site i+1.
	Locals []protocol.StateID
	// Net holds the messages outstanding in the network.
	Net MsgBag
	// Succs are the global transitions leaving this state.
	Succs []Edge

	key string
}

// Edge is a global state transition: site Site takes local transition T,
// leading to the global state To.
type Edge struct {
	Site protocol.SiteID
	T    protocol.Transition
	// Consumed is the exact multiset of messages read by the transition
	// (resolving any wildcard patterns).
	Consumed []protocol.Msg
	To       *Node
}

// Key returns the canonical encoding of the global state.
func (n *Node) Key() string { return n.key }

// String renders the node as "<q,w,a> {yes[2->1]*1}".
func (n *Node) String() string {
	parts := make([]string, len(n.Locals))
	for i, s := range n.Locals {
		parts[i] = string(s)
	}
	return "<" + strings.Join(parts, ",") + "> " + n.Net.String()
}

// Terminal reports whether the state has no immediately reachable
// successors.
func (n *Node) Terminal() bool { return len(n.Succs) == 0 }

func nodeKey(locals []protocol.StateID, net MsgBag) string {
	parts := make([]string, len(locals))
	for i, s := range locals {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",") + "|" + net.key()
}

// Graph is the reachable state graph of a transaction executed under a
// protocol: every global state reachable from the initial global state, in
// the absence of site failures (the paper constructs failure-free graphs;
// failure analysis works on concurrency sets instead).
type Graph struct {
	Protocol *protocol.Protocol
	Initial  *Node
	// Nodes maps canonical keys to reachable states.
	Nodes map[string]*Node
}

// BuildOptions bounds graph construction.
type BuildOptions struct {
	// MaxNodes aborts construction when the graph exceeds this many global
	// states (the reachable graph grows exponentially with the number of
	// sites). Zero means the default of 1_000_000.
	MaxNodes int
}

const defaultMaxNodes = 1_000_000

// Build constructs the reachable state graph for p by breadth-first
// exploration from the initial global state (all sites in their initial
// local state, the environment messages outstanding).
func Build(p *protocol.Protocol, opts BuildOptions) (*Graph, error) {
	if err := protocol.Validate(p); err != nil {
		return nil, err
	}
	max := opts.MaxNodes
	if max == 0 {
		max = defaultMaxNodes
	}

	locals := make([]protocol.StateID, p.N())
	for i, a := range p.Sites {
		locals[i] = a.Initial
	}
	net := MsgBag{}
	for _, m := range p.Initial {
		net.Add(m, 1)
	}
	init := &Node{Locals: locals, Net: net, key: nodeKey(locals, net)}
	g := &Graph{Protocol: p, Initial: init, Nodes: map[string]*Node{init.key: init}}

	queue := []*Node{init}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, a := range p.Sites {
			local := n.Locals[int(a.Site)-1]
			for _, t := range a.From(local) {
				for _, consumed := range matchReads(n.Net, a.Site, t.Reads) {
					succLocals := make([]protocol.StateID, len(n.Locals))
					copy(succLocals, n.Locals)
					succLocals[int(a.Site)-1] = t.To
					succNet := n.Net.Clone()
					for _, m := range consumed {
						succNet.Add(m, -1)
					}
					for _, m := range t.Sends {
						succNet.Add(m, 1)
					}
					k := nodeKey(succLocals, succNet)
					succ, ok := g.Nodes[k]
					if !ok {
						if len(g.Nodes) >= max {
							return nil, fmt.Errorf("core: reachable graph for %s exceeds %d states", p.Name, max)
						}
						succ = &Node{Locals: succLocals, Net: succNet, key: k}
						g.Nodes[k] = succ
						queue = append(queue, succ)
					}
					n.Succs = append(n.Succs, Edge{Site: a.Site, T: t, Consumed: consumed, To: succ})
				}
			}
		}
	}
	return g, nil
}

// matchReads enumerates the distinct message multisets in net that satisfy
// the read patterns for a transition at site self. Concrete patterns demand
// a specific (name, from, to=self) message; wildcard patterns (AnySite)
// match any sender. Each returned slice is one way to fire the transition;
// duplicates (same consumed multiset) are suppressed.
func matchReads(net MsgBag, self protocol.SiteID, reads []protocol.Pattern) [][]protocol.Msg {
	var results [][]protocol.Msg
	seen := map[string]bool{}

	var rec func(i int, remaining MsgBag, acc []protocol.Msg)
	rec = func(i int, remaining MsgBag, acc []protocol.Msg) {
		if i == len(reads) {
			consumed := make([]protocol.Msg, len(acc))
			copy(consumed, acc)
			sort.Slice(consumed, func(a, b int) bool {
				if consumed[a].Name != consumed[b].Name {
					return consumed[a].Name < consumed[b].Name
				}
				return consumed[a].From < consumed[b].From
			})
			k := fmt.Sprint(consumed)
			if !seen[k] {
				seen[k] = true
				results = append(results, consumed)
			}
			return
		}
		pat := reads[i]
		if pat.From != protocol.AnySite {
			m := protocol.Msg{Name: pat.Name, From: pat.From, To: self}
			if remaining.Count(m) > 0 {
				remaining.Add(m, -1)
				rec(i+1, remaining, append(acc, m))
				remaining.Add(m, 1)
			}
			return
		}
		// Wildcard: try each distinct available sender.
		senders := make([]protocol.SiteID, 0, 4)
		for m, c := range remaining {
			if c > 0 && m.Name == pat.Name && m.To == self {
				senders = append(senders, m.From)
			}
		}
		sort.Slice(senders, func(a, b int) bool { return senders[a] < senders[b] })
		for _, from := range senders {
			m := protocol.Msg{Name: pat.Name, From: from, To: self}
			remaining.Add(m, -1)
			rec(i+1, remaining, append(acc, m))
			remaining.Add(m, 1)
		}
	}
	rec(0, net.Clone(), nil)
	return results
}

// Final reports whether every local state in the vector is a final state.
func (g *Graph) Final(n *Node) bool {
	for i, a := range g.Protocol.Sites {
		k, err := a.Kind(n.Locals[i])
		if err != nil || !k.Final() {
			return false
		}
	}
	return true
}

// Inconsistent reports whether the global state contains both a local commit
// state and a local abort state — the mixed decision that violates
// transaction atomicity.
func (g *Graph) Inconsistent(n *Node) bool {
	hasCommit, hasAbort := false, false
	for i, a := range g.Protocol.Sites {
		k, err := a.Kind(n.Locals[i])
		if err != nil {
			return false
		}
		switch k {
		case protocol.KindCommit:
			hasCommit = true
		case protocol.KindAbort:
			hasAbort = true
		}
	}
	return hasCommit && hasAbort
}

// Deadlocked reports whether the state is terminal but not final: the
// protocol can make no further move yet some site is not in a final state.
func (g *Graph) Deadlocked(n *Node) bool {
	return n.Terminal() && !g.Final(n)
}

// Stats summarizes a reachable state graph.
type Stats struct {
	States       int // reachable global states
	FinalStates  int // all-final state vectors
	Terminal     int // states with no successor
	Deadlocked   int // terminal but not final
	Inconsistent int // states mixing commit and abort locally
	Edges        int // global transitions
	CommitFinal  int // final states in which the sites committed
	AbortFinal   int // final states in which the sites aborted
}

// Stats computes summary statistics of the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	for _, n := range g.Nodes {
		s.States++
		s.Edges += len(n.Succs)
		final := g.Final(n)
		if final {
			s.FinalStates++
			committed := false
			for i, a := range g.Protocol.Sites {
				if k, _ := a.Kind(n.Locals[i]); k == protocol.KindCommit {
					committed = true
					break
				}
			}
			if committed {
				s.CommitFinal++
			} else {
				s.AbortFinal++
			}
		}
		if n.Terminal() {
			s.Terminal++
			if !final {
				s.Deadlocked++
			}
		}
		if g.Inconsistent(n) {
			s.Inconsistent++
		}
	}
	return s
}

// SortedNodes returns the graph's nodes ordered by key, for deterministic
// iteration in reports and tests.
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
