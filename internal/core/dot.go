package core

import (
	"fmt"
	"io"
	"strings"

	"nbcommit/internal/protocol"
)

// WriteAutomatonDOT renders one site's automaton in Graphviz DOT format.
// Commit states are drawn as double circles, abort states as double
// octagons, matching the visual convention of the paper's figures.
func WriteAutomatonDOT(w io.Writer, a *protocol.Automaton) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", fmt.Sprintf("site%d_%s", a.Site, a.Name))
	for _, s := range a.StateIDs() {
		shape := "circle"
		switch a.States[s] {
		case protocol.KindCommit:
			shape = "doublecircle"
		case protocol.KindAbort:
			shape = "doubleoctagon"
		}
		style := ""
		if s == a.Initial {
			style = ", style=bold"
		}
		fmt.Fprintf(&b, "  %q [shape=%s%s];\n", s, shape, style)
	}
	for _, t := range a.Transitions {
		reads := make([]string, len(t.Reads))
		for i, r := range t.Reads {
			reads[i] = r.String()
		}
		sends := make([]string, len(t.Sends))
		for i, m := range t.Sends {
			sends[i] = m.String()
		}
		label := strings.Join(reads, ",")
		if len(sends) > 0 {
			label += " / " + strings.Join(sends, ",")
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", t.From, t.To, label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteGraphDOT renders the reachable state graph in Graphviz DOT format.
// Each node is labelled with its state vector and outstanding messages;
// final states are drawn as boxes, inconsistent states (none should exist
// for a correct protocol) in red.
func WriteGraphDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n",
		g.Protocol.Name)
	for _, n := range g.SortedNodes() {
		attrs := []string{fmt.Sprintf("label=%q", n.String())}
		if g.Final(n) {
			attrs = append(attrs, "shape=box")
		}
		if g.Deadlocked(n) {
			attrs = append(attrs, `color=orange`)
		}
		if g.Inconsistent(n) {
			attrs = append(attrs, `color=red, style=filled`)
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Key(), strings.Join(attrs, ", "))
	}
	for _, n := range g.SortedNodes() {
		for _, e := range n.Succs {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				n.Key(), e.To.Key(), fmt.Sprintf("s%d: %s->%s", int(e.Site), e.T.From, e.T.To))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
