package core

import (
	"fmt"
	"sort"
	"strings"

	"nbcommit/internal/protocol"
)

// SynchronousWithinOne reports whether the protocol is synchronous within
// one state transition: one site never leads another by more than one state
// transition during any execution (slide "Synchronicity within one state
// transition"). The check explores the reachable global states augmented
// with per-site transition counts and verifies that the counts of any two
// sites never differ by more than one.
//
// The returned counterexample is empty when the property holds.
func SynchronousWithinOne(p *protocol.Protocol, opts BuildOptions) (bool, string, error) {
	if err := protocol.Validate(p); err != nil {
		return false, "", err
	}
	max := opts.MaxNodes
	if max == 0 {
		max = defaultMaxNodes
	}

	type state struct {
		locals []protocol.StateID
		net    MsgBag
		steps  []int
	}
	key := func(s state) string {
		parts := make([]string, len(s.steps))
		for i, c := range s.steps {
			parts[i] = fmt.Sprintf("%d", c)
		}
		return nodeKey(s.locals, s.net) + "#" + strings.Join(parts, ",")
	}
	checkSpread := func(steps []int) bool {
		lo, hi := steps[0], steps[0]
		for _, c := range steps[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi-lo <= 1
	}

	locals := make([]protocol.StateID, p.N())
	for i, a := range p.Sites {
		locals[i] = a.Initial
	}
	net := MsgBag{}
	for _, m := range p.Initial {
		net.Add(m, 1)
	}
	init := state{locals: locals, net: net, steps: make([]int, p.N())}
	seen := map[string]bool{key(init): true}
	queue := []state{init}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if !checkSpread(s.steps) {
			return false, describeSpread(s.locals, s.steps), nil
		}
		for _, a := range p.Sites {
			local := s.locals[int(a.Site)-1]
			for _, t := range a.From(local) {
				for _, consumed := range matchReads(s.net, a.Site, t.Reads) {
					succ := state{
						locals: append([]protocol.StateID(nil), s.locals...),
						net:    s.net.Clone(),
						steps:  append([]int(nil), s.steps...),
					}
					succ.locals[int(a.Site)-1] = t.To
					succ.steps[int(a.Site)-1]++
					for _, m := range consumed {
						succ.net.Add(m, -1)
					}
					for _, m := range t.Sends {
						succ.net.Add(m, 1)
					}
					k := key(succ)
					if seen[k] {
						continue
					}
					if len(seen) >= max {
						return false, "", fmt.Errorf("core: synchrony exploration for %s exceeds %d states", p.Name, max)
					}
					seen[k] = true
					queue = append(queue, succ)
				}
			}
		}
	}
	return true, "", nil
}

func describeSpread(locals []protocol.StateID, steps []int) string {
	parts := make([]string, len(locals))
	for i := range locals {
		parts[i] = fmt.Sprintf("s%d:%s@%d", i+1, locals[i], steps[i])
	}
	return "sites lead by more than one transition: " + strings.Join(parts, " ")
}

// SkeletonEdge is a message-free edge of an automaton's state diagram.
type SkeletonEdge struct {
	From, To protocol.StateID
}

// Skeleton extracts the message-free structure of an automaton: its states
// with their kinds, and the set of distinct (from, to) edges. The paper
// observes (slide "The similarity between 2PC protocols") that the
// central-site and decentralized 2PC protocols are structurally equivalent —
// their skeletons coincide with the canonical 2PC.
func Skeleton(a *protocol.Automaton) (map[protocol.StateID]protocol.StateKind, []SkeletonEdge) {
	states := make(map[protocol.StateID]protocol.StateKind, len(a.States))
	for s, k := range a.States {
		states[s] = k
	}
	seen := map[SkeletonEdge]bool{}
	var edges []SkeletonEdge
	for _, t := range a.Transitions {
		e := SkeletonEdge{From: t.From, To: t.To}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return states, edges
}

// StructurallyEquivalent reports whether two automata have identical
// skeletons: same state names with the same kinds, and the same edge set.
func StructurallyEquivalent(a, b *protocol.Automaton) bool {
	as, ae := Skeleton(a)
	bs, be := Skeleton(b)
	if len(as) != len(bs) || len(ae) != len(be) {
		return false
	}
	for s, k := range as {
		if bs[s] != k {
			return false
		}
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
