package core

import (
	"strings"
	"testing"

	"nbcommit/internal/protocol"
)

func build(t testing.TB, p *protocol.Protocol) *Graph {
	t.Helper()
	g, err := Build(p, BuildOptions{})
	if err != nil {
		t.Fatalf("Build(%s): %v", p.Name, err)
	}
	return g
}

func namesEqual(got []protocol.StateID, want ...protocol.StateID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestNoInconsistentStates verifies the atomicity property on which the
// whole paper rests: no protocol ever reaches a global state containing both
// a local commit and a local abort state.
func TestNoInconsistentStates(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.OnePC(3),
		protocol.CentralTwoPC(3), protocol.DecentralizedTwoPC(3),
		protocol.CentralThreePC(3), protocol.DecentralizedThreePC(3),
		protocol.CentralTwoPC(4), protocol.CentralThreePC(4),
	} {
		g := build(t, p)
		if s := g.Stats(); s.Inconsistent != 0 {
			t.Errorf("%s: %d inconsistent global states", p.Name, s.Inconsistent)
		}
	}
}

// TestNoDeadlocks verifies that every reachable terminal state is final: the
// failure-free protocols always run to completion.
func TestNoDeadlocks(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(3), protocol.DecentralizedTwoPC(3),
		protocol.CentralThreePC(3), protocol.DecentralizedThreePC(3),
	} {
		g := build(t, p)
		if s := g.Stats(); s.Deadlocked != 0 {
			t.Errorf("%s: %d deadlocked states", p.Name, s.Deadlocked)
		}
	}
}

// TestReachableGraphTwoSite2PC reproduces figure "Reachable state graph for
// the 2-site 2PC protocol" (slide 18): the graph exists, has both commit and
// abort outcomes, and no mixed ones.
func TestReachableGraphTwoSite2PC(t *testing.T) {
	g := build(t, protocol.CentralTwoPC(2))
	s := g.Stats()
	if s.States == 0 || s.Edges == 0 {
		t.Fatalf("empty graph: %+v", s)
	}
	if s.CommitFinal == 0 {
		t.Error("no committed final state reachable")
	}
	if s.AbortFinal == 0 {
		t.Error("no aborted final state reachable")
	}
	if s.Inconsistent != 0 || s.Deadlocked != 0 {
		t.Errorf("graph unsound: %+v", s)
	}
	// The initial state is <q,q> with just the environment request.
	if g.Initial.Locals[0] != protocol.StateQ || g.Initial.Locals[1] != protocol.StateQ {
		t.Errorf("initial locals = %v", g.Initial.Locals)
	}
	if g.Initial.Net.Size() != 1 {
		t.Errorf("initial network = %v", g.Initial.Net)
	}
}

// TestConcurrencySetsCanonical2PC reproduces slide 32 exactly:
// CS(q)={q,w,a}, CS(w)={q,w,a,c}, CS(a)={q,w,a}, CS(c)={w,c},
// computed from the reachable graph of the decentralized 2PC (whose sites
// all run the canonical skeleton).
func TestConcurrencySetsCanonical2PC(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		g := build(t, protocol.DecentralizedTwoPC(n))
		a := Analyze(g)
		cases := []struct {
			s    protocol.StateID
			want []protocol.StateID
		}{
			{protocol.StateQ, []protocol.StateID{"a", "q", "w"}},
			{protocol.StateW, []protocol.StateID{"a", "c", "q", "w"}},
			{protocol.StateA, []protocol.StateID{"a", "q", "w"}},
			{protocol.StateC, []protocol.StateID{"c", "w"}},
		}
		for _, c := range cases {
			cs, err := a.Set(1, c.s)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !namesEqual(cs.Names(), c.want...) {
				t.Errorf("n=%d: CS(%s) = %v, want %v", n, c.s, cs.Names(), c.want)
			}
		}
	}
}

// TestConcurrencySetsCanonical3PC checks the 3PC concurrency sets implied by
// slide 40's termination rule: commit states appear only in CS(p) and CS(c).
func TestConcurrencySetsCanonical3PC(t *testing.T) {
	g := build(t, protocol.DecentralizedThreePC(3))
	a := Analyze(g)
	cases := []struct {
		s    protocol.StateID
		want []protocol.StateID
	}{
		{protocol.StateQ, []protocol.StateID{"a", "q", "w"}},
		{protocol.StateW, []protocol.StateID{"a", "p", "q", "w"}},
		{protocol.StateP, []protocol.StateID{"c", "p", "w"}},
		{protocol.StateA, []protocol.StateID{"a", "q", "w"}},
		{protocol.StateC, []protocol.StateID{"c", "p"}},
	}
	for _, c := range cases {
		cs, err := a.Set(2, c.s)
		if err != nil {
			t.Fatal(err)
		}
		if !namesEqual(cs.Names(), c.want...) {
			t.Errorf("CS(%s) = %v, want %v", c.s, cs.Names(), c.want)
		}
	}
}

// TestCommittableStates verifies that blocking protocols have exactly one
// committable state while nonblocking protocols have more than one (slide
// "Committable States").
func TestCommittableStates(t *testing.T) {
	g := build(t, protocol.DecentralizedTwoPC(3))
	a := Analyze(g)
	if got := a.CommittableStates(1); !namesEqual(got, protocol.StateC) {
		t.Errorf("2PC committable = %v, want [c]", got)
	}

	g = build(t, protocol.DecentralizedThreePC(3))
	a = Analyze(g)
	if got := a.CommittableStates(1); !namesEqual(got, protocol.StateC, protocol.StateP) {
		t.Errorf("3PC committable = %v, want [c p]", got)
	}

	// Central-site: the coordinator's p and c are committable too.
	g = build(t, protocol.CentralThreePC(3))
	a = Analyze(g)
	if got := a.CommittableStates(1); !namesEqual(got, protocol.StateC, protocol.StateP) {
		t.Errorf("central 3PC coordinator committable = %v, want [c p]", got)
	}
	if got := a.CommittableStates(2); !namesEqual(got, protocol.StateC, protocol.StateP) {
		t.Errorf("central 3PC slave committable = %v, want [c p]", got)
	}
}

// TestTheoremOn2PC verifies that both 2PC paradigms block (slides 28/33):
// state w is noncommittable and its concurrency set contains a commit state.
func TestTheoremOn2PC(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(3), protocol.DecentralizedTwoPC(3),
	} {
		r := CheckTheorem(build(t, p))
		if r.Nonblocking() {
			t.Errorf("%s reported nonblocking", p.Name)
			continue
		}
		// Every violation must be at state w, and both violation kinds must
		// appear there.
		kinds := map[ViolationKind]bool{}
		for _, v := range r.Violations {
			if v.State.State != protocol.StateW {
				t.Errorf("%s: unexpected violation at %s", p.Name, v.State)
			}
			kinds[v.Kind] = true
		}
		if !kinds[MixedConcurrency] || !kinds[NoncommittableSeesCommit] {
			t.Errorf("%s: 2PC can block for either reason; got kinds %v", p.Name, kinds)
		}
		if !strings.Contains(r.String(), "BLOCKING") {
			t.Errorf("%s: report = %q", p.Name, r.String())
		}
	}
}

// TestTheoremOn3PC verifies the headline result: both 3PC protocols satisfy
// the fundamental nonblocking theorem at every site.
func TestTheoremOn3PC(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralThreePC(2), protocol.CentralThreePC(3), protocol.CentralThreePC(4),
		protocol.DecentralizedThreePC(2), protocol.DecentralizedThreePC(3),
	} {
		r := CheckTheorem(build(t, p))
		if !r.Nonblocking() {
			t.Errorf("%s:\n%s", p.Name, r.String())
		}
		if !strings.Contains(r.String(), "NONBLOCKING") {
			t.Errorf("%s: report = %q", p.Name, r.String())
		}
	}
}

// TestResilienceCorollary: for 3PC all sites obey the theorem, so the
// protocol is nonblocking as long as any one site survives; for 2PC no site
// does.
func TestResilienceCorollary(t *testing.T) {
	if good := CheckResilience(build(t, protocol.CentralThreePC(4))); len(good) != 4 {
		t.Errorf("3PC resilient sites = %v, want all 4", good)
	}
	// In central-site 2PC only the coordinator obeys the theorem — 2PC
	// blocks exactly when the coordinator fails.
	if good := CheckResilience(build(t, protocol.CentralTwoPC(4))); len(good) != 1 || good[0] != 1 {
		t.Errorf("central 2PC resilient sites = %v, want [1]", good)
	}
	// Decentralized 2PC is symmetric: every site can block.
	if good := CheckResilience(build(t, protocol.DecentralizedTwoPC(3))); len(good) != 0 {
		t.Errorf("decentralized 2PC resilient sites = %v, want none", good)
	}
}

// TestLemma verifies slide 33: canonical 2PC violates both constraints of
// the lemma at w; canonical 3PC satisfies it.
func TestLemma(t *testing.T) {
	viol := CheckLemma(protocol.CanonicalTwoPC())
	if len(viol) != 2 {
		t.Fatalf("canonical 2PC lemma violations = %v", viol)
	}
	for _, v := range viol {
		if v.State != protocol.StateW {
			t.Errorf("violation at %s, want w", v.State)
		}
		if !strings.Contains(v.String(), "state w") {
			t.Errorf("violation string = %q", v.String())
		}
	}
	if viol := CheckLemma(protocol.CanonicalThreePC()); len(viol) != 0 {
		t.Fatalf("canonical 3PC lemma violations = %v", viol)
	}
}

// TestMakeNonblockingSkeleton reproduces slide 34: inserting the buffer
// state p between w and c turns the canonical 2PC into the canonical 3PC.
func TestMakeNonblockingSkeleton(t *testing.T) {
	got, err := MakeNonblockingSkeleton(protocol.CanonicalTwoPC())
	if err != nil {
		t.Fatal(err)
	}
	if len(CheckLemma(got)) != 0 {
		t.Fatalf("synthesized skeleton still violates the lemma")
	}
	if !StructurallyEquivalent(got, protocol.CanonicalThreePC()) {
		_, edges := Skeleton(got)
		t.Fatalf("synthesized skeleton differs from canonical 3PC: %v", edges)
	}
	// Idempotent on already-nonblocking input.
	again, err := MakeNonblockingSkeleton(got)
	if err != nil {
		t.Fatal(err)
	}
	if !StructurallyEquivalent(again, got) {
		t.Fatal("synthesis not idempotent on nonblocking input")
	}
}

// TestSynthesizeCentralBuffer verifies the message-level construction:
// mechanically inserting a prepare/ack round into the central-site 2PC
// yields a protocol that is structurally the central-site 3PC of slide 35
// and satisfies the fundamental theorem.
func TestSynthesizeCentralBuffer(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		syn, err := SynthesizeCentralBuffer(protocol.CentralTwoPC(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref := protocol.CentralThreePC(n)
		for i := range syn.Sites {
			if !StructurallyEquivalent(syn.Sites[i], ref.Sites[i]) {
				t.Errorf("n=%d site %d: synthesized skeleton differs from slide-35 3PC", n, i+1)
			}
		}
		r := CheckTheorem(build(t, syn))
		if !r.Nonblocking() {
			t.Errorf("n=%d synthesized central 3PC:\n%s", n, r.String())
		}
	}
}

// TestTerminationRule reproduces slide 40: the backup coordinator commits
// iff its state is in {p, c} and aborts from {q, w, a}. The rule applies to
// the slaves of the central-site 3PC (the backup is elected among them) and
// to every site of the decentralized 3PC.
func TestTerminationRule(t *testing.T) {
	want := map[protocol.StateID]Decision{
		protocol.StateQ: DecideAbort,
		protocol.StateW: DecideAbort,
		protocol.StateA: DecideAbort,
		protocol.StateP: DecideCommit,
		protocol.StateC: DecideCommit,
	}

	central := Analyze(build(t, protocol.CentralThreePC(3)))
	for _, site := range []protocol.SiteID{2, 3} {
		for s, w := range want {
			d, err := TerminationRule(central, site, s)
			if err != nil {
				t.Fatalf("site %d state %s: %v", site, s, err)
			}
			if d != w {
				t.Errorf("central slave %d state %s: decision %s, want %s", site, s, d, w)
			}
		}
	}
	// The coordinator's own p differs: while the coordinator sits in p no
	// slave can have committed (commits require the coordinator's commit
	// message), so CS(p1) has no commit state and the rule aborts — which is
	// consistent, since nobody committed.
	if d, err := TerminationRule(central, 1, protocol.StateP); err != nil || d != DecideAbort {
		t.Errorf("coordinator p: decision %v err %v, want abort", d, err)
	}

	decent := Analyze(build(t, protocol.DecentralizedThreePC(3)))
	for _, site := range []protocol.SiteID{1, 2, 3} {
		for s, w := range want {
			d, err := TerminationRule(decent, site, s)
			if err != nil {
				t.Fatalf("site %d state %s: %v", site, s, err)
			}
			if d != w {
				t.Errorf("decentralized site %d state %s: decision %s, want %s", site, s, d, w)
			}
		}
	}
	if _, err := TerminationRule(decent, 2, "zz"); err == nil {
		t.Fatal("unknown state should fail")
	}
}

// TestTerminationRuleSafety is the sufficiency half of the theorem for 3PC:
// in every reachable global state, the decision the rule derives from any
// single operational site's local state is consistent with every final local
// state already reached by the other sites. (For 2PC this fails at w — that
// is blocking; here we assert it holds everywhere for 3PC.)
func TestTerminationRuleSafety(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralThreePC(2), protocol.CentralThreePC(3),
		protocol.DecentralizedThreePC(2), protocol.DecentralizedThreePC(3),
	} {
		g := build(t, p)
		a := Analyze(g)
		for _, n := range g.Nodes {
			for i := range n.Locals {
				site := protocol.SiteID(i + 1)
				d, err := TerminationRule(a, site, n.Locals[i])
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				for j := range n.Locals {
					aut := g.Protocol.Sites[j]
					k, _ := aut.Kind(n.Locals[j])
					if k == protocol.KindCommit && d != DecideCommit {
						t.Fatalf("%s: state %s: site %d decides %s but site %d committed",
							p.Name, n, int(site), d, j+1)
					}
					if k == protocol.KindAbort && d != DecideAbort {
						t.Fatalf("%s: state %s: site %d decides %s but site %d aborted",
							p.Name, n, int(site), d, j+1)
					}
				}
			}
		}
	}
}

// TestSynchronousWithinOne verifies slide 24/26: all four 2PC/3PC protocols
// are synchronous within one state transition.
func TestSynchronousWithinOne(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(3), protocol.DecentralizedTwoPC(3),
		protocol.CentralThreePC(3), protocol.DecentralizedThreePC(3),
	} {
		ok, counter, err := SynchronousWithinOne(p, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !ok {
			t.Errorf("%s not synchronous within one transition: %s", p.Name, counter)
		}
	}
}

// TestStructuralEquivalence verifies slide 31: the central-site and
// decentralized 2PC protocols are structurally equivalent (their site
// skeletons coincide with the canonical 2PC).
func TestStructuralEquivalence(t *testing.T) {
	canon := protocol.CanonicalTwoPC()
	slave := protocol.CentralTwoPC(3).Sites[1]
	peer := protocol.DecentralizedTwoPC(3).Sites[0]
	if !StructurallyEquivalent(slave, canon) {
		t.Error("central-site slave not equivalent to canonical 2PC")
	}
	if !StructurallyEquivalent(peer, canon) {
		t.Error("decentralized peer not equivalent to canonical 2PC")
	}
	if !StructurallyEquivalent(slave, peer) {
		t.Error("slave and peer skeletons differ")
	}
	// And 3PC counterparts.
	canon3 := protocol.CanonicalThreePC()
	if !StructurallyEquivalent(protocol.CentralThreePC(3).Sites[1], canon3) {
		t.Error("central-site 3PC slave not equivalent to canonical 3PC")
	}
	if !StructurallyEquivalent(protocol.DecentralizedThreePC(3).Sites[0], canon3) {
		t.Error("decentralized 3PC peer not equivalent to canonical 3PC")
	}
	// Negative case.
	if StructurallyEquivalent(canon, canon3) {
		t.Error("2PC and 3PC skeletons reported equivalent")
	}
}

func TestMsgBag(t *testing.T) {
	b := MsgBag{}
	m := protocol.Msg{Name: "yes", From: 2, To: 1}
	b.Add(m, 2)
	if b.Count(m) != 2 || b.Size() != 2 {
		t.Fatalf("bag = %v", b)
	}
	b.Add(m, -2)
	if b.Count(m) != 0 || len(b) != 0 {
		t.Fatalf("bag after removal = %v", b)
	}
	b.Add(m, 0)
	if len(b) != 0 {
		t.Fatal("Add(0) should be a no-op")
	}
	b.Add(m, 1)
	c := b.Clone()
	c.Add(m, 1)
	if b.Count(m) != 1 || c.Count(m) != 2 {
		t.Fatal("Clone is not independent")
	}
	if got := b.String(); !strings.Contains(got, "yes[2->1]*1") {
		t.Fatalf("String = %q", got)
	}
	if got := (MsgBag{}).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestGraphBounds(t *testing.T) {
	_, err := Build(protocol.DecentralizedTwoPC(3), BuildOptions{MaxNodes: 5})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected bound error, got %v", err)
	}
}

func TestSetErrors(t *testing.T) {
	a := Analyze(build(t, protocol.CentralTwoPC(2)))
	if _, err := a.Set(1, "zz"); err == nil {
		t.Fatal("Set of unoccupied state should fail")
	}
	// Coordinator never occupies p in 2PC.
	if _, err := a.Set(1, protocol.StateP); err == nil {
		t.Fatal("Set(p) should fail for 2PC")
	}
}

func TestDOTOutputs(t *testing.T) {
	var sb strings.Builder
	if err := WriteAutomatonDOT(&sb, protocol.CanonicalThreePC()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "doublecircle", "doubleoctagon", `"q" -> "w"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("automaton DOT missing %q", want)
		}
	}
	sb.Reset()
	g := build(t, protocol.CentralTwoPC(2))
	if err := WriteGraphDOT(&sb, g); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "shape=box", "->"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("graph DOT missing %q", want)
		}
	}
}

func TestCommittableSummary(t *testing.T) {
	a := Analyze(build(t, protocol.DecentralizedThreePC(2)))
	got := CommittableSummary(a)
	if got != "s1:{c,p} s2:{c,p}" {
		t.Fatalf("CommittableSummary = %q", got)
	}
}

func TestNodeString(t *testing.T) {
	g := build(t, protocol.CentralTwoPC(2))
	s := g.Initial.String()
	if !strings.HasPrefix(s, "<q,q>") {
		t.Fatalf("Node.String = %q", s)
	}
}

// TestCheckTermination model-checks the backup decision rule over every
// reachable global state and backup choice: clean for 3PC (sufficiency of
// the theorem), counterexamples for 2PC.
func TestCheckTermination(t *testing.T) {
	for _, p := range []*protocol.Protocol{
		protocol.CentralThreePC(2), protocol.CentralThreePC(3), protocol.CentralThreePC(4),
		protocol.DecentralizedThreePC(2), protocol.DecentralizedThreePC(3),
	} {
		if viol := CheckTermination(build(t, p)); len(viol) != 0 {
			t.Errorf("%s: %d violations, first: %s", p.Name, len(viol), viol[0])
		}
	}
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(3), protocol.DecentralizedTwoPC(3),
	} {
		viol := CheckTermination(build(t, p))
		if len(viol) == 0 {
			t.Errorf("%s: expected termination counterexamples", p.Name)
			continue
		}
		// Every counterexample must involve a backup in the uncertainty
		// state w.
		for _, v := range viol {
			if got := v.State.Locals[int(v.Backup)-1]; got != protocol.StateW {
				t.Errorf("%s: violation with backup in %s, want w: %s", p.Name, got, v)
			}
			if v.String() == "" {
				t.Error("empty violation string")
			}
		}
	}
}

// TestAnalysisOnCompiledProtocols runs the full pipeline over protocols
// written in the DSL: a user's 2PC is branded blocking, a user's
// decentralized 3PC nonblocking — the designer workflow end to end.
func TestAnalysisOnCompiledProtocols(t *testing.T) {
	twoPC := `
protocol user-2pc
roles coordinator@1 slave@rest
init request@1
role coordinator
  states q* w a! c+
  q -> w : recv request@env ; send xact@slaves
  w -> c : recv yes@slaves  ; send commit@slaves ; vote yes
  w -> a : recv yes@slaves  ; send abort@slaves  ; vote no
  w -> a : recv no@any      ; send abort@slaves
role slave
  states q* w a! c+
  q -> w : recv xact@coordinator ; send yes@coordinator ; vote yes
  q -> a : recv xact@coordinator ; send no@coordinator  ; vote no
  w -> c : recv commit@coordinator
  w -> a : recv abort@coordinator
`
	p2, err := protocol.Compile(twoPC, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2 := CheckTheorem(build(t, p2))
	if r2.Nonblocking() {
		t.Fatal("compiled 2PC reported nonblocking")
	}
	for _, v := range r2.Violations {
		if v.State.State != protocol.StateW {
			t.Errorf("violation at %s, want w", v.State)
		}
	}

	threePC := `
protocol user-d3pc
roles peer@all
init xact@all
role peer
  states q* w p a! c+
  q -> w : recv xact@env ; send yes@all ; vote yes
  q -> a : recv xact@env ; send no@all  ; vote no
  w -> p : recv yes@all  ; send prepare@all
  w -> a : recv no@any
  p -> c : recv prepare@all
`
	p3, err := protocol.Compile(threePC, 3)
	if err != nil {
		t.Fatal(err)
	}
	r3 := CheckTheorem(build(t, p3))
	if !r3.Nonblocking() {
		t.Fatalf("compiled decentralized 3PC:\n%s", r3)
	}
	if got := r3.Analysis.CommittableStates(1); !namesEqual(got, protocol.StateC, protocol.StateP) {
		t.Fatalf("committable = %v", got)
	}
	if viol := CheckTermination(build(t, p3)); len(viol) != 0 {
		t.Fatalf("termination counterexamples on compiled 3PC: %v", viol[0])
	}
}

// TestPathTo produces execution witnesses: every reachable state has a path
// from the initial state whose steps replay to exactly that state vector.
func TestPathTo(t *testing.T) {
	g := build(t, protocol.CentralTwoPC(2))
	for _, n := range g.SortedNodes() {
		steps, err := g.PathTo(n)
		if err != nil {
			t.Fatalf("PathTo(%s): %v", n, err)
		}
		// Replay the steps over local state vectors.
		locals := []string{"q", "q"}
		for _, st := range steps {
			if locals[st.Site-1] != st.From {
				t.Fatalf("witness step %v does not match replay state %v", st, locals)
			}
			locals[st.Site-1] = st.To
		}
		for i := range locals {
			if locals[i] != string(n.Locals[i]) {
				t.Fatalf("witness for %s replays to %v", n, locals)
			}
		}
	}
	// Initial state: empty path with the sentinel rendering.
	steps, err := g.PathTo(g.Initial)
	if err != nil || len(steps) != 0 {
		t.Fatalf("initial path = %v, %v", steps, err)
	}
	if FormatPath(steps) != "(initial state)" {
		t.Fatalf("FormatPath(empty) = %q", FormatPath(steps))
	}
	// A foreign node is rejected.
	other := build(t, protocol.CentralTwoPC(3))
	if _, err := g.PathTo(other.Initial); err == nil {
		t.Fatal("foreign node accepted")
	}
}

// TestTerminationWitness pairs the model checker with witness paths: for a
// 2PC counterexample the witness path replays to the violating state.
func TestTerminationWitness(t *testing.T) {
	g := build(t, protocol.CentralTwoPC(3))
	viol := CheckTermination(g)
	if len(viol) == 0 {
		t.Fatal("no counterexamples")
	}
	steps, err := g.PathTo(viol[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("violating state should not be initial")
	}
	if FormatPath(steps) == "" {
		t.Fatal("empty witness rendering")
	}
}

// TestTheoremOn1PC: the paper dismisses 1PC for lacking unilateral abort,
// but the theorem also brands it blocking: a slave still in q cannot know
// whether the coordinator already committed, so q is a noncommittable state
// with a commit state in its concurrency set.
func TestTheoremOn1PC(t *testing.T) {
	r := CheckTheorem(build(t, protocol.OnePC(3)))
	if r.Nonblocking() {
		t.Fatal("1PC reported nonblocking")
	}
	foundQ := false
	for _, v := range r.Violations {
		if v.State.State == protocol.StateQ && v.Kind == NoncommittableSeesCommit {
			foundQ = true
		}
	}
	if !foundQ {
		t.Fatalf("expected a q violation, got %v", r.Violations)
	}
}

// TestWildcardEnumeration: a wildcard read over two available senders makes
// the graph branch into both consumptions.
func TestWildcardEnumeration(t *testing.T) {
	// Site 1 waits for a "sig" from ANY of sites 2 and 3, which both send
	// one on startup.
	p := &protocol.Protocol{
		Name: "wildcard-test",
		Sites: []*protocol.Automaton{
			{
				Site: 1, Name: "sink", Initial: "q",
				States: map[protocol.StateID]protocol.StateKind{
					"q": protocol.KindInitial, "c": protocol.KindCommit,
				},
				Transitions: []protocol.Transition{
					{From: "q", To: "c", Reads: []protocol.Pattern{{Name: "sig", From: protocol.AnySite}}},
				},
			},
			{
				Site: 2, Name: "src", Initial: "q",
				States: map[protocol.StateID]protocol.StateKind{
					"q": protocol.KindInitial, "c": protocol.KindCommit,
				},
				Transitions: []protocol.Transition{
					{From: "q", To: "c",
						Reads: []protocol.Pattern{{Name: "go", From: protocol.Env}},
						Sends: []protocol.Msg{{Name: "sig", From: 2, To: 1}}},
				},
			},
			{
				Site: 3, Name: "src", Initial: "q",
				States: map[protocol.StateID]protocol.StateKind{
					"q": protocol.KindInitial, "c": protocol.KindCommit,
				},
				Transitions: []protocol.Transition{
					{From: "q", To: "c",
						Reads: []protocol.Pattern{{Name: "go", From: protocol.Env}},
						Sends: []protocol.Msg{{Name: "sig", From: 3, To: 1}}},
				},
			},
		},
		Initial: []protocol.Msg{
			{Name: "go", From: protocol.Env, To: 2},
			{Name: "go", From: protocol.Env, To: 3},
		},
	}
	g := build(t, p)
	// Find the state where both sigs are outstanding and site 1 is in q:
	// it must have two distinct successors via site 1 (one per sender).
	found := false
	for _, n := range g.Nodes {
		if n.Locals[0] != "q" || n.Net.Size() != 2 {
			continue
		}
		bySender := map[int]bool{}
		for _, e := range n.Succs {
			if e.Site == 1 {
				for _, m := range e.Consumed {
					bySender[int(m.From)] = true
				}
			}
		}
		if bySender[2] && bySender[3] {
			found = true
		}
	}
	if !found {
		t.Fatal("wildcard did not enumerate both senders")
	}
}

// TestSynchronyCounterexample: a protocol whose coordinator aborts on the
// first NO without collecting the full round is NOT synchronous within one
// state transition — the check produces a concrete counterexample.
func TestSynchronyCounterexample(t *testing.T) {
	src := `
protocol eager-2pc
roles coordinator@1 slave@rest
init request@1
role coordinator
  states q* w a! c+
  q -> w : recv request@env ; send xact@slaves
  w -> c : recv yes@slaves  ; send commit@slaves ; vote yes
  w -> a : recv no@any      ; send abort@slaves
role slave
  states q* w a! c+
  q -> w : recv xact@coordinator ; send yes@coordinator ; vote yes
  q -> a : recv xact@coordinator ; send no@coordinator  ; vote no
  w -> c : recv commit@coordinator
  w -> a : recv abort@coordinator
`
	p, err := protocol.Compile(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, counter, err := SynchronousWithinOne(p, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("eager-abort 2PC reported synchronous")
	}
	if !strings.Contains(counter, "lead by more than one transition") {
		t.Fatalf("counterexample = %q", counter)
	}
}

// TestLinearTwoPCAnalysis: the chained 2PC (extension beyond the paper's
// two paradigms) is also blocking, and is NOT synchronous within one
// transition (the wave leaves site 1 far behind).
func TestLinearTwoPCAnalysis(t *testing.T) {
	p := protocol.LinearTwoPC(4)
	g := build(t, p)
	if s := g.Stats(); s.Inconsistent != 0 || s.Deadlocked != 0 {
		t.Fatalf("linear graph unsound: %+v", s)
	}
	r := CheckTheorem(g)
	if r.Nonblocking() {
		t.Fatal("linear 2PC reported nonblocking")
	}
	ok, _, err := SynchronousWithinOne(p, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("linear 2PC reported synchronous within one transition")
	}
}
