package core

import (
	"fmt"
	"strings"
)

// Step is one edge on a witness path through the reachable state graph.
type Step struct {
	Site int
	From string
	To   string
	Node *Node // global state after the step
}

// PathTo returns a shortest execution (sequence of site transitions) from
// the initial global state to the target node — a witness showing how the
// protocol reaches that state. The target must belong to g.
func (g *Graph) PathTo(target *Node) ([]Step, error) {
	if got, ok := g.Nodes[target.Key()]; !ok || got != target {
		return nil, fmt.Errorf("core: node %s is not part of this graph", target)
	}
	if target == g.Initial {
		return nil, nil
	}
	type crumb struct {
		prev *Node
		step Step
	}
	from := map[*Node]crumb{}
	queue := []*Node{g.Initial}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Succs {
			if _, seen := from[e.To]; seen || e.To == g.Initial {
				continue
			}
			from[e.To] = crumb{prev: n, step: Step{
				Site: int(e.Site), From: string(e.T.From), To: string(e.T.To), Node: e.To,
			}}
			if e.To == target {
				queue = nil
				break
			}
			queue = append(queue, e.To)
		}
	}
	if _, ok := from[target]; !ok {
		return nil, fmt.Errorf("core: node %s unreachable (graph corrupt?)", target)
	}
	var rev []Step
	for n := target; n != g.Initial; n = from[n].prev {
		rev = append(rev, from[n].step)
	}
	out := make([]Step, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

// FormatPath renders a witness path, e.g.
// "s1: q->w | s2: q->w | s1: w->c".
func FormatPath(steps []Step) string {
	if len(steps) == 0 {
		return "(initial state)"
	}
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = fmt.Sprintf("s%d: %s->%s", s.Site, s.From, s.To)
	}
	return strings.Join(parts, " | ")
}
