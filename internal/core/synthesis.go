package core

import (
	"fmt"
	"sort"

	"nbcommit/internal/protocol"
)

// MakeNonblockingSkeleton applies the paper's design method (slide "Making
// the canonical 2PC protocol nonblocking") to a canonical automaton: while
// the lemma for protocols synchronous within one transition is violated,
// insert a buffer state on each edge that enters a commit state from a
// noncommittable state (or from a state also adjacent to an abort state).
// Applied to the canonical 2PC this inserts the single buffer state p
// ("prepare to commit") between w and c, producing the canonical 3PC.
//
// The input automaton is not modified. The buffer states are named "p",
// "p2", "p3", ... avoiding collisions with existing state names.
func MakeNonblockingSkeleton(a *protocol.Automaton) (*protocol.Automaton, error) {
	out := cloneAutomaton(a)
	const maxRounds = 32
	for round := 0; round < maxRounds; round++ {
		viol := CheckLemma(out)
		if len(viol) == 0 {
			return out, nil
		}
		// Gather the offending edges: any edge u -> c into a commit state
		// where u participates in a violation.
		offending := map[protocol.StateID]bool{}
		for _, v := range viol {
			offending[v.State] = true
		}
		inserted := false
		var next []protocol.Transition
		for _, t := range out.Transitions {
			if offending[t.From] && out.States[t.To] == protocol.KindCommit {
				buf := freshStateID(out, "p")
				out.States[buf] = protocol.KindIntermediate
				next = append(next,
					protocol.Transition{From: t.From, To: buf, Reads: t.Reads, Sends: t.Sends, Vote: t.Vote},
					protocol.Transition{From: buf, To: t.To, Reads: t.Reads, Sends: nil},
				)
				inserted = true
				continue
			}
			next = append(next, t)
		}
		out.Transitions = next
		if !inserted {
			return nil, fmt.Errorf("core: lemma violations remain but no commit edge to buffer in %s", a.Name)
		}
	}
	return nil, fmt.Errorf("core: buffer-state insertion did not converge for %s", a.Name)
}

func cloneAutomaton(a *protocol.Automaton) *protocol.Automaton {
	out := &protocol.Automaton{
		Site: a.Site, Name: a.Name, Initial: a.Initial,
		States:      make(map[protocol.StateID]protocol.StateKind, len(a.States)),
		Transitions: append([]protocol.Transition(nil), a.Transitions...),
	}
	for s, k := range a.States {
		out.States[s] = k
	}
	for i := range out.Transitions {
		out.Transitions[i].Reads = append([]protocol.Pattern(nil), out.Transitions[i].Reads...)
		out.Transitions[i].Sends = append([]protocol.Msg(nil), out.Transitions[i].Sends...)
	}
	return out
}

func freshStateID(a *protocol.Automaton, base string) protocol.StateID {
	if _, taken := a.States[protocol.StateID(base)]; !taken {
		return protocol.StateID(base)
	}
	for i := 2; ; i++ {
		id := protocol.StateID(fmt.Sprintf("%s%d", base, i))
		if _, taken := a.States[id]; !taken {
			return id
		}
	}
}

// SynthesizeCentralBuffer applies the buffer-state construction at the
// message level to a central-site protocol: every coordinator transition
// into a commit state is split into a prepare round followed by the commit,
// and the matching slave transitions gain a buffer state that acknowledges
// the prepare. Applied to the central-site 2PC this mechanically yields the
// central-site 3PC of slide 35.
//
// The coordinator must be site 1 and, per the central-site model, slaves
// communicate only with the coordinator. The input protocol is not modified.
func SynthesizeCentralBuffer(p *protocol.Protocol) (*protocol.Protocol, error) {
	if p.N() < 2 {
		return nil, fmt.Errorf("core: protocol %s has fewer than 2 sites", p.Name)
	}
	out := &protocol.Protocol{
		Name:    p.Name + " +buffer",
		Initial: append([]protocol.Msg(nil), p.Initial...),
	}
	others := make([]protocol.SiteID, 0, p.N()-1)
	for i := 2; i <= p.N(); i++ {
		others = append(others, protocol.SiteID(i))
	}

	// Coordinator: split each transition into a commit state.
	coord := cloneAutomaton(p.Sites[0])
	var coordTrans []protocol.Transition
	for _, t := range coord.Transitions {
		if coord.States[t.To] != protocol.KindCommit {
			coordTrans = append(coordTrans, t)
			continue
		}
		buf := freshStateID(coord, "p")
		coord.States[buf] = protocol.KindIntermediate
		prepSends := make([]protocol.Msg, len(others))
		ackReads := make([]protocol.Pattern, len(others))
		for i, s := range others {
			prepSends[i] = protocol.Msg{Name: protocol.MsgPrepare, From: 1, To: s}
			ackReads[i] = protocol.Pattern{Name: protocol.MsgAck, From: s}
		}
		coordTrans = append(coordTrans,
			protocol.Transition{From: t.From, To: buf, Reads: t.Reads, Sends: prepSends, Vote: t.Vote},
			protocol.Transition{From: buf, To: t.To, Reads: ackReads, Sends: t.Sends},
		)
	}
	coord.Transitions = coordTrans
	out.Sites = append(out.Sites, coord)

	// Slaves: buffer each transition that consumes the coordinator's commit.
	for _, orig := range p.Sites[1:] {
		slave := cloneAutomaton(orig)
		var slaveTrans []protocol.Transition
		for _, t := range slave.Transitions {
			if slave.States[t.To] != protocol.KindCommit {
				slaveTrans = append(slaveTrans, t)
				continue
			}
			buf := freshStateID(slave, "p")
			slave.States[buf] = protocol.KindIntermediate
			slaveTrans = append(slaveTrans,
				protocol.Transition{
					From: t.From, To: buf,
					Reads: []protocol.Pattern{{Name: protocol.MsgPrepare, From: 1}},
					Sends: []protocol.Msg{{Name: protocol.MsgAck, From: slave.Site, To: 1}},
				},
				protocol.Transition{From: buf, To: t.To, Reads: t.Reads, Sends: t.Sends},
			)
		}
		slave.Transitions = slaveTrans
		out.Sites = append(out.Sites, slave)
	}

	if err := protocol.Validate(out); err != nil {
		return nil, fmt.Errorf("core: synthesized protocol invalid: %w", err)
	}
	return out, nil
}

// CommittableSummary formats the committable states of every site, e.g.
// "s1:{c} s2:{c}" for 2PC. Nonblocking protocols always have more than one
// committable state per site.
func CommittableSummary(a *Analysis) string {
	var sites []protocol.SiteID
	for s := range a.Occupied {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := ""
	for i, s := range sites {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("s%d:{", int(s))
		for j, st := range a.CommittableStates(s) {
			if j > 0 {
				out += ","
			}
			out += string(st)
		}
		out += "}"
	}
	return out
}
