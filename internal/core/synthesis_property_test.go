package core

import (
	"fmt"
	"math/rand"
	"testing"

	"nbcommit/internal/protocol"
)

// randomSkeleton builds a random acyclic commit-protocol skeleton: a chain
// of intermediate states after the vote, with unilateral-abort edges and a
// final commit. Layers guarantee acyclicity; every skeleton is a plausible
// "commit protocol a designer might sketch".
func randomSkeleton(rng *rand.Rand) *protocol.Automaton {
	layers := 1 + rng.Intn(4) // intermediate states between q and c
	states := map[protocol.StateID]protocol.StateKind{
		"q": protocol.KindInitial,
		"a": protocol.KindAbort,
		"c": protocol.KindCommit,
	}
	ids := []protocol.StateID{"q"}
	for i := 0; i < layers; i++ {
		id := protocol.StateID(fmt.Sprintf("m%d", i))
		states[id] = protocol.KindIntermediate
		ids = append(ids, id)
	}

	var trans []protocol.Transition
	// Vote edges from q: yes into the first intermediate, no into abort.
	trans = append(trans,
		protocol.Transition{From: "q", To: ids[1], Vote: protocol.VoteYes},
		protocol.Transition{From: "q", To: "a", Vote: protocol.VoteNo},
	)
	// Chain the intermediates; each may also abort.
	for i := 1; i < len(ids); i++ {
		next := protocol.StateID("c")
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		trans = append(trans, protocol.Transition{From: ids[i], To: next})
		if rng.Intn(2) == 0 {
			trans = append(trans, protocol.Transition{From: ids[i], To: "a"})
		}
	}
	// Occasionally a shortcut edge straight to commit from an early layer —
	// the classic design mistake that creates blocking.
	if len(ids) > 2 && rng.Intn(2) == 0 {
		from := ids[1+rng.Intn(len(ids)-2)]
		trans = append(trans, protocol.Transition{From: from, To: "c"})
	}
	return &protocol.Automaton{
		Site: 1, Name: "random-skel", Initial: "q",
		States: states, Transitions: trans,
	}
}

// TestSynthesisPropertyRandomSkeletons: for 500 random protocol skeletons,
// the paper's buffer-state method always converges to a lemma-clean
// (nonblocking under single-transition synchrony) skeleton, never touches an
// already-clean one, and never introduces cycles or new final states.
func TestSynthesisPropertyRandomSkeletons(t *testing.T) {
	rng := rand.New(rand.NewSource(1981))
	fixedCount := 0
	for i := 0; i < 500; i++ {
		skel := randomSkeleton(rng)
		before := CheckLemma(skel)
		out, err := MakeNonblockingSkeleton(skel)
		if err != nil {
			t.Fatalf("iteration %d: %v\nskeleton: %+v", i, err, skel.Transitions)
		}
		after := CheckLemma(out)
		if len(after) != 0 {
			t.Fatalf("iteration %d: synthesis left %d lemma violations: %v",
				i, len(after), after)
		}
		if len(before) > 0 {
			fixedCount++
		} else if !StructurallyEquivalent(out, skel) {
			t.Fatalf("iteration %d: clean skeleton was modified", i)
		}
		// Structural sanity of the result.
		finals := 0
		for _, k := range out.States {
			if k.Final() {
				finals++
			}
		}
		if finals != 2 {
			t.Fatalf("iteration %d: synthesis changed the final states (%d)", i, finals)
		}
		for id, k := range skel.States {
			if out.States[id] != k {
				t.Fatalf("iteration %d: state %s changed kind", i, id)
			}
		}
	}
	if fixedCount == 0 {
		t.Fatal("generator produced no blocking skeletons; property untested")
	}
}

// TestSynthesisPreservesVotes: buffer insertion keeps the vote annotations
// on the rerouted edges (the buffer edge inherits the original vote, the
// new commit edge carries none).
func TestSynthesisPreservesVotes(t *testing.T) {
	out, err := MakeNonblockingSkeleton(protocol.CanonicalTwoPC())
	if err != nil {
		t.Fatal(err)
	}
	yesVotes, noVotes := 0, 0
	for _, tr := range out.Transitions {
		switch tr.Vote {
		case protocol.VoteYes:
			yesVotes++
		case protocol.VoteNo:
			noVotes++
		}
	}
	if yesVotes != 1 || noVotes != 1 {
		t.Fatalf("votes after synthesis: yes=%d no=%d, want 1/1", yesVotes, noVotes)
	}
}
