package core

import (
	"fmt"
	"sort"
	"strings"

	"nbcommit/internal/protocol"
)

// LocalState identifies a local state of a particular site: the unit over
// which concurrency sets and committability are defined.
type LocalState struct {
	Site  protocol.SiteID
	State protocol.StateID
}

// String renders e.g. "s2:w".
func (l LocalState) String() string { return fmt.Sprintf("s%d:%s", int(l.Site), l.State) }

// CSet is a concurrency set: given that site k occupies state s, the set of
// local states that may be concurrently occupied by the other sites
// (derived from the reachable state graph, slide "Comments on reachable
// state graphs").
type CSet struct {
	Of     LocalState
	States map[LocalState]bool
}

// Names returns the state names in the set, deduplicated across sites and
// sorted. For the homogeneous protocols of the paper this is the form in
// which concurrency sets are written, e.g. CS(w) = {q, w, a, c}.
func (c *CSet) Names() []protocol.StateID {
	seen := map[protocol.StateID]bool{}
	var out []protocol.StateID
	for l := range c.States {
		if !seen[l.State] {
			seen[l.State] = true
			out = append(out, l.State)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set in the paper's notation, e.g.
// "CS(s2:w) = {a, c, q, w}".
func (c *CSet) String() string {
	names := c.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return fmt.Sprintf("CS(%s) = {%s}", c.Of, strings.Join(parts, ", "))
}

// Analysis holds the derived facts about a protocol's reachable state graph
// that the fundamental nonblocking theorem quantifies over: per-site
// occupied states, their concurrency sets, and their committability.
type Analysis struct {
	Graph *Graph
	// Occupied lists, per site, the local states that the site occupies in
	// some reachable global state.
	Occupied map[protocol.SiteID][]protocol.StateID
	// Sets maps each occupied local state to its concurrency set.
	Sets map[LocalState]*CSet
	// VotedYes[l] reports that every path by which site l.Site reaches
	// l.State includes a yes-vote transition.
	VotedYes map[LocalState]bool
	// Committable[l] reports that occupancy of l.State by site l.Site
	// implies that all sites have voted yes on committing.
	Committable map[LocalState]bool
}

// Analyze computes concurrency sets and committable states for every
// occupied local state of the protocol underlying g.
func Analyze(g *Graph) *Analysis {
	a := &Analysis{
		Graph:       g,
		Occupied:    map[protocol.SiteID][]protocol.StateID{},
		Sets:        map[LocalState]*CSet{},
		VotedYes:    map[LocalState]bool{},
		Committable: map[LocalState]bool{},
	}

	// Local yes-vote analysis: votedYes(s) holds iff every path from the
	// automaton's initial state to s crosses a VoteYes transition. Computed
	// per automaton by fixed point over the acyclic diagram.
	for _, aut := range g.Protocol.Sites {
		for s, v := range votedYesStates(aut) {
			a.VotedYes[LocalState{Site: aut.Site, State: s}] = v
		}
	}

	// Occupancy and concurrency sets from the reachable graph.
	occupied := map[LocalState]bool{}
	for _, n := range g.Nodes {
		for i := range n.Locals {
			occupied[LocalState{Site: protocol.SiteID(i + 1), State: n.Locals[i]}] = true
		}
	}
	for l := range occupied {
		a.Occupied[l.Site] = append(a.Occupied[l.Site], l.State)
		a.Sets[l] = &CSet{Of: l, States: map[LocalState]bool{}}
		a.Committable[l] = true // refined below
	}
	for site := range a.Occupied {
		sort.Slice(a.Occupied[site], func(i, j int) bool {
			return a.Occupied[site][i] < a.Occupied[site][j]
		})
	}
	for _, n := range g.Nodes {
		for i := range n.Locals {
			l := LocalState{Site: protocol.SiteID(i + 1), State: n.Locals[i]}
			cs := a.Sets[l]
			allYes := true
			for j := range n.Locals {
				other := LocalState{Site: protocol.SiteID(j + 1), State: n.Locals[j]}
				if j != i {
					cs.States[other] = true
				}
				if !a.VotedYes[other] {
					allYes = false
				}
			}
			// Committable: occupancy of l in ANY reachable global state must
			// imply all sites voted yes; one counterexample clears it.
			if !allYes {
				a.Committable[l] = false
			}
		}
	}
	return a
}

// votedYesStates computes, for each state of a single automaton, whether
// every path from the initial state to it includes a yes-vote transition.
// Unreachable states are omitted.
func votedYesStates(a *protocol.Automaton) map[protocol.StateID]bool {
	// reach[s] true once s is known reachable; yes[s] meaningful only then.
	reach := map[protocol.StateID]bool{a.Initial: true}
	yes := map[protocol.StateID]bool{a.Initial: false}
	changed := true
	for changed {
		changed = false
		for s := range a.States {
			// s's value: all incoming edges from reachable states must carry
			// or inherit a yes vote; a state with no reachable predecessor
			// other than being initial stays unreachable.
			if s == a.Initial {
				continue
			}
			anyIn := false
			allYes := true
			for _, t := range a.Transitions {
				if t.To != s || !reach[t.From] {
					continue
				}
				anyIn = true
				if !(t.Vote == protocol.VoteYes || yes[t.From]) {
					allYes = false
				}
			}
			if !anyIn {
				continue
			}
			if !reach[s] || yes[s] != allYes {
				reach[s] = true
				yes[s] = allYes
				changed = true
			}
		}
	}
	out := map[protocol.StateID]bool{}
	for s := range reach {
		out[s] = yes[s]
	}
	return out
}

// Set returns the concurrency set of the given site's state, or an error if
// the state is never occupied in a reachable global state.
func (a *Analysis) Set(site protocol.SiteID, s protocol.StateID) (*CSet, error) {
	cs, ok := a.Sets[LocalState{Site: site, State: s}]
	if !ok {
		return nil, fmt.Errorf("core: site %d never occupies state %q in a reachable state", int(site), s)
	}
	return cs, nil
}

// kindOf resolves the state kind of a local state via its owning automaton.
func (a *Analysis) kindOf(l LocalState) protocol.StateKind {
	aut, err := a.Graph.Protocol.Site(l.Site)
	if err != nil {
		return protocol.KindIntermediate
	}
	k, err := aut.Kind(l.State)
	if err != nil {
		return protocol.KindIntermediate
	}
	return k
}

// ContainsCommit reports whether the concurrency set contains a commit
// state.
func (a *Analysis) ContainsCommit(cs *CSet) bool {
	for l := range cs.States {
		if a.kindOf(l) == protocol.KindCommit {
			return true
		}
	}
	return false
}

// ContainsAbort reports whether the concurrency set contains an abort state.
func (a *Analysis) ContainsAbort(cs *CSet) bool {
	for l := range cs.States {
		if a.kindOf(l) == protocol.KindAbort {
			return true
		}
	}
	return false
}

// CommittableStates returns the names of the committable states of a site,
// sorted. For 2PC this is {c}; for 3PC, {p, c} — nonblocking protocols
// always have more than one committable state.
func (a *Analysis) CommittableStates(site protocol.SiteID) []protocol.StateID {
	var out []protocol.StateID
	for _, s := range a.Occupied[site] {
		if a.Committable[LocalState{Site: site, State: s}] {
			out = append(out, s)
		}
	}
	return out
}
