package core

import (
	"fmt"

	"nbcommit/internal/protocol"
)

// TerminationViolation is a counterexample found by CheckTermination: a
// reachable global state and crash set for which the termination protocol's
// decision contradicts a decision already durable at some site.
type TerminationViolation struct {
	State *Node
	// Crashed is the set of failed sites in the scenario.
	Crashed []protocol.SiteID
	// Backup is the elected backup coordinator (lowest operational site).
	Backup protocol.SiteID
	// Decision is what the rule derives from the backup's local state.
	Decision Decision
	// Conflict describes the contradiction.
	Conflict string
}

// String renders the counterexample.
func (v TerminationViolation) String() string {
	return fmt.Sprintf("state %s crashed %v backup s%d decides %s: %s",
		v.State, v.Crashed, int(v.Backup), v.Decision, v.Conflict)
}

// CheckTermination exhaustively model-checks the backup-coordinator decision
// rule against a protocol's reachable state graph: for every reachable
// global state and every nonempty proper subset of crashed sites, the
// elected backup (the lowest-numbered operational site, knowing only its own
// local state) applies the rule of slide 39. The decision must agree with
// every final local state in the global state vector — crashed sites
// included, since their commit/abort records are on stable storage and bind
// their recovery.
//
// Enumerating crash subsets makes every site the backup in some scenario,
// so the check covers the worst case of the paper's termination section
// ("in the worst case, all of the operational sites must obey the
// fundamental nonblocking theorem"). Divergent decisions between two
// *potential* backups in non-final states are not violations: phase 1 of
// the backup protocol synchronizes the cohort before any decision escapes,
// so only the decision actually issued — checked here against every durable
// final state — matters.
//
// For the 3PC protocols the check finds nothing (the sufficiency half of
// the fundamental theorem); for 2PC it returns the classic counterexamples
// (a backup in w committing against an abort elsewhere, or vice versa).
// Subset enumeration is exponential in sites; intended for n <= 5.
func CheckTermination(g *Graph) []TerminationViolation {
	a := Analyze(g)
	n := g.Protocol.N()
	var out []TerminationViolation

	for _, nd := range g.SortedNodes() {
		// The decision depends only on the backup's identity, so compute
		// one violation record per distinct backup rather than per subset;
		// Crashed records the minimal subset electing that backup
		// (sites 1..backup-1 crashed).
		for b := 1; b <= n; b++ {
			backup := protocol.SiteID(b)
			d, err := TerminationRule(a, backup, nd.Locals[b-1])
			if err != nil {
				continue
			}
			conflict := ""
			for i, local := range nd.Locals {
				k, kerr := g.Protocol.Sites[i].Kind(local)
				if kerr != nil {
					continue
				}
				if k == protocol.KindCommit && d != DecideCommit {
					conflict = fmt.Sprintf("site %d already committed", i+1)
					break
				}
				if k == protocol.KindAbort && d != DecideAbort {
					conflict = fmt.Sprintf("site %d already aborted", i+1)
					break
				}
			}
			if conflict == "" {
				continue
			}
			var crashed []protocol.SiteID
			for i := 1; i < b; i++ {
				crashed = append(crashed, protocol.SiteID(i))
			}
			out = append(out, TerminationViolation{
				State: nd, Crashed: crashed, Backup: backup,
				Decision: d, Conflict: conflict,
			})
		}
	}
	return out
}
