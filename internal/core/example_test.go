package core_test

import (
	"fmt"
	"log"

	"nbcommit/internal/core"
	"nbcommit/internal/protocol"
)

// The fundamental nonblocking theorem, applied: 2PC blocks, 3PC does not.
func ExampleCheckTheorem() {
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(3),
		protocol.CentralThreePC(3),
	} {
		g, err := core.Build(p, core.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		r := core.CheckTheorem(g)
		fmt.Printf("%s nonblocking: %v\n", p.Name, r.Nonblocking())
	}
	// Output:
	// central-site 2PC (n=3) nonblocking: false
	// central-site 3PC (n=3) nonblocking: true
}

// The paper's design method: insert a buffer state into a blocking protocol
// and it becomes nonblocking.
func ExampleMakeNonblockingSkeleton() {
	skel, err := core.MakeNonblockingSkeleton(protocol.CanonicalTwoPC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violations after synthesis:", len(core.CheckLemma(skel)))
	fmt.Println("equals canonical 3PC:", core.StructurallyEquivalent(skel, protocol.CanonicalThreePC()))
	// Output:
	// violations after synthesis: 0
	// equals canonical 3PC: true
}

// The backup coordinator's decision rule (slide 39): commit iff the
// concurrency set of its local state contains a commit state.
func ExampleTerminationRule() {
	g, err := core.Build(protocol.DecentralizedThreePC(3), core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a := core.Analyze(g)
	for _, s := range []protocol.StateID{"q", "w", "p", "c"} {
		d, err := core.TerminationRule(a, 1, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backup in %s -> %s\n", s, d)
	}
	// Output:
	// backup in q -> abort
	// backup in w -> abort
	// backup in p -> commit
	// backup in c -> commit
}

// Concurrency sets computed from the reachable state graph reproduce
// slide 32 exactly.
func ExampleAnalysis_Set() {
	g, err := core.Build(protocol.DecentralizedTwoPC(3), core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a := core.Analyze(g)
	cs, err := a.Set(1, protocol.StateW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cs)
	// Output:
	// CS(s1:w) = {a, c, q, w}
}
