// Package remote is the data plane for multi-process deployments: a small
// request/reply layer over the same transport the commit engine uses, with
// which a coordinator node executes reads and writes against the stores of
// its peer nodes before driving the commit protocol.
package remote

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
)

// Message kinds used by the data plane; route them to Server.Handle and
// Client.Deliver from the engine's Unhandled hook.
const (
	KindOp    = "KV-OP"
	KindReply = "KV-REPLY"
)

// Op names.
const (
	OpBegin  = "begin"
	OpGet    = "get"
	OpPut    = "put"
	OpDelete = "delete"
	OpAbort  = "abort"
)

// Request is one data-plane operation against a peer's store.
type Request struct {
	ReqID uint64
	TxID  string
	Op    string
	Key   string
	Value string
}

// Reply answers a Request.
type Reply struct {
	ReqID uint64
	Value string
	Err   string
}

func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("remote: encode: %v", err))
	}
	return buf.Bytes()
}

// Server applies data-plane requests to a local store.
type Server struct {
	Store *kv.Store
	Send  func(transport.Message) error
}

// Handle processes one KV-OP message and sends the reply.
func (s *Server) Handle(m transport.Message) {
	var req Request
	if err := gob.NewDecoder(bytes.NewReader(m.Body)).Decode(&req); err != nil {
		return
	}
	rep := Reply{ReqID: req.ReqID}
	var err error
	switch req.Op {
	case OpBegin:
		err = s.Store.Begin(req.TxID)
	case OpGet:
		rep.Value, err = s.Store.Get(req.TxID, req.Key)
	case OpPut:
		err = s.Store.Put(req.TxID, req.Key, req.Value)
	case OpDelete:
		err = s.Store.Delete(req.TxID, req.Key)
	case OpAbort:
		err = s.Store.Abort(req.TxID)
	default:
		err = fmt.Errorf("remote: unknown op %q", req.Op)
	}
	if err != nil {
		rep.Err = err.Error()
	}
	_ = s.Send(transport.Message{To: m.From, Kind: KindReply, TxID: req.TxID, Body: encode(rep)})
}

// ErrTimeout is returned when a peer does not answer in time (it may have
// crashed; the caller should abort the transaction).
var ErrTimeout = errors.New("remote: call timed out")

// Client issues data-plane requests and matches replies.
type Client struct {
	Send    func(transport.Message) error
	Timeout time.Duration

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan Reply
}

// NewClient builds a client with the given send function and per-call
// timeout.
func NewClient(send func(transport.Message) error, timeout time.Duration) *Client {
	return &Client{Send: send, Timeout: timeout, pending: map[uint64]chan Reply{}}
}

// Deliver routes a KV-REPLY message to its waiting caller.
func (c *Client) Deliver(m transport.Message) {
	var rep Reply
	if err := gob.NewDecoder(bytes.NewReader(m.Body)).Decode(&rep); err != nil {
		return
	}
	c.mu.Lock()
	ch := c.pending[rep.ReqID]
	delete(c.pending, rep.ReqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// Call sends one operation to a peer and waits for the reply.
func (c *Client) Call(to int, txid, op, key, value string) (string, error) {
	c.mu.Lock()
	c.seq++
	req := Request{ReqID: c.seq, TxID: txid, Op: op, Key: key, Value: value}
	ch := make(chan Reply, 1)
	c.pending[req.ReqID] = ch
	c.mu.Unlock()

	if err := c.Send(transport.Message{To: to, Kind: KindOp, TxID: txid, Body: encode(req)}); err != nil {
		c.drop(req.ReqID)
		return "", err
	}
	select {
	case rep := <-ch:
		if rep.Err != "" {
			return "", errors.New(rep.Err)
		}
		return rep.Value, nil
	case <-time.After(c.Timeout):
		c.drop(req.ReqID)
		return "", fmt.Errorf("%w (site %d, op %s)", ErrTimeout, to, op)
	}
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}
