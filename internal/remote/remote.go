// Package remote is the data plane for multi-process deployments: a small
// request/reply layer over the same transport the commit engine uses, with
// which a coordinator node executes reads and writes against the stores of
// its peer nodes before driving the commit protocol.
package remote

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/shard"
	"nbcommit/internal/transport"
)

// Message kinds used by the data plane; route them to Server.Handle and
// Client.Deliver from the engine's Unhandled hook.
const (
	KindOp    = "KV-OP"
	KindReply = "KV-REPLY"
)

// Op names.
const (
	OpBegin  = "begin"
	OpGet    = "get"
	OpPut    = "put"
	OpDelete = "delete"
	OpAbort  = "abort"
	// OpCommit hands coordination of a transaction to the peer: the peer's
	// engine runs the commit protocol over req.Participants and the reply
	// carries the outcome. This is how a node that touched no local data
	// commits a transaction without inflating the cohort with itself — a
	// single-shard transaction engages exactly its owner site.
	OpCommit = "commit"
	// OpSnapGet is the read-only fast path: a snapshot read against the
	// peer's multi-version store. It needs no transaction, takes no locks
	// and never touches the commit protocol — a single-shard read is this
	// one round trip. SnapTS zero reads at the peer's current stable
	// timestamp (returned in Reply.TS so a session can pin later reads to
	// the same snapshot); nonzero re-reads at a previously returned
	// timestamp.
	OpSnapGet = "snapget"
)

// Request is one data-plane operation against a peer's store.
type Request struct {
	ReqID uint64
	TxID  string
	Op    string
	Key   string
	Value string
	// Participants is the commit cohort for OpCommit.
	Participants []int
	// MapVersion stamps the sender's shard map version; the receiver rejects
	// the request if it routes under a different map. Zero means unsharded.
	MapVersion uint64
	// SnapTS pins an OpSnapGet to a snapshot timestamp returned by an
	// earlier OpSnapGet against the same site. Zero reads at the site's
	// current stable timestamp.
	SnapTS uint64
}

// Reply answers a Request.
type Reply struct {
	ReqID uint64
	Value string
	Err   string
	// TS is the snapshot timestamp an OpSnapGet was served at.
	TS uint64
}

// encodeBufPool and decodeReaderPool recycle the scratch objects of the
// request/reply codec: every data-plane call used to allocate a fresh
// bytes.Buffer (and its growth doublings) per encode and a bytes.Reader per
// decode; pooling leaves only the exact-size body copy on the hot path.
var (
	encodeBufPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	decodeReaderPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}
)

func encode(v any) []byte {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		panic(fmt.Sprintf("remote: encode: %v", err))
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encodeBufPool.Put(buf)
	return out
}

// decode gob-decodes a message body into v through a pooled reader.
func decode(body []byte, v any) error {
	r := decodeReaderPool.Get().(*bytes.Reader)
	r.Reset(body)
	err := gob.NewDecoder(r).Decode(v)
	r.Reset(nil) // do not pin the body
	decodeReaderPool.Put(r)
	return err
}

// Server applies data-plane requests to a local store and, for OpCommit,
// drives the local commit engine as the transaction's coordinator.
type Server struct {
	Store *kv.Store
	Send  func(transport.Message) error
	// Paradigm selects central-site (default) or decentralized commitment
	// for forwarded commits, mirroring nodeapi.API.Paradigm.
	Paradigm string
	// CommitWait bounds how long a forwarded commit waits for the engine's
	// decision. Zero defaults to 10s.
	CommitWait time.Duration
	// Map, when set, rejects requests stamped with a different shard map
	// version: a router holding a stale map must not place data here.
	Map *shard.Map

	site atomic.Pointer[engine.Site]
}

// SetSite installs the local commit engine, enabling OpCommit. It may be
// called after messages start flowing (the engine is typically constructed
// after the server it is wired to); forwarded commits arriving before it
// are refused, not misrouted.
func (s *Server) SetSite(site *engine.Site) { s.site.Store(site) }

// Handle processes one KV-OP message and sends the reply.
func (s *Server) Handle(m transport.Message) {
	var req Request
	if err := decode(m.Body, &req); err != nil {
		return
	}
	rep := Reply{ReqID: req.ReqID}
	var err error
	if verr := s.Map.CheckVersion(req.MapVersion); verr != nil {
		err = verr
	} else {
		switch req.Op {
		case OpBegin:
			err = s.Store.Begin(req.TxID)
		case OpGet:
			rep.Value, err = s.Store.Get(req.TxID, req.Key)
		case OpPut:
			err = s.Store.Put(req.TxID, req.Key, req.Value)
		case OpDelete:
			err = s.Store.Delete(req.TxID, req.Key)
		case OpAbort:
			err = s.Store.Abort(req.TxID)
		case OpSnapGet:
			if req.SnapTS == 0 {
				rep.Value, rep.TS, err = s.Store.SnapshotGet(req.Key)
			} else {
				rep.TS = req.SnapTS
				rep.Value, err = s.Store.ReadAt(req.SnapTS, req.Key)
			}
		case OpCommit:
			rep.Value, err = s.commit(req)
		default:
			err = fmt.Errorf("remote: unknown op %q", req.Op)
		}
	}
	if err != nil {
		rep.Err = err.Error()
	}
	_ = s.Send(transport.Message{To: m.From, Kind: KindReply, TxID: req.TxID, Body: encode(rep)})
}

// commit coordinates a forwarded transaction on the local engine and waits
// for the decision. The caller's cohort is used as-is (this site must be in
// it, which holds by construction: commits are forwarded to an owner of a
// touched shard).
func (s *Server) commit(req Request) (string, error) {
	site := s.site.Load()
	if site == nil {
		return "", errors.New("remote: this node does not accept forwarded commits")
	}
	var err error
	if s.Paradigm == "decentralized" {
		err = site.BeginPeer(req.TxID, req.Participants)
	} else {
		err = site.Begin(req.TxID, req.Participants)
	}
	if err != nil {
		return "", err
	}
	wait := s.CommitWait
	if wait == 0 {
		wait = 10 * time.Second
	}
	o, err := site.WaitOutcome(req.TxID, wait)
	if err != nil {
		return "", err
	}
	return o.String(), nil
}

// ErrTimeout is returned when a peer does not answer in time (it may have
// crashed; the caller should abort the transaction).
var ErrTimeout = errors.New("remote: call timed out")

// Client issues data-plane requests and matches replies.
type Client struct {
	Send    func(transport.Message) error
	Timeout time.Duration
	// MapVersion stamps every request with the sender's shard map version
	// (zero: unsharded, never rejected).
	MapVersion uint64

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan Reply
}

// NewClient builds a client with the given send function and per-call
// timeout.
func NewClient(send func(transport.Message) error, timeout time.Duration) *Client {
	return &Client{Send: send, Timeout: timeout, pending: map[uint64]chan Reply{}}
}

// Deliver routes a KV-REPLY message to its waiting caller.
func (c *Client) Deliver(m transport.Message) {
	var rep Reply
	if err := decode(m.Body, &rep); err != nil {
		return
	}
	c.mu.Lock()
	ch := c.pending[rep.ReqID]
	delete(c.pending, rep.ReqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// Call sends one operation to a peer and waits for the reply.
func (c *Client) Call(to int, txid, op, key, value string) (string, error) {
	rep, err := c.call(to, Request{TxID: txid, Op: op, Key: key, Value: value}, c.Timeout)
	return rep.Value, err
}

// SnapGet reads key from a peer's store at a consistent snapshot — one RPC,
// no transaction, no commit-protocol traffic. ts zero reads at the peer's
// current stable timestamp; the timestamp actually used is returned, so
// passing it back pins subsequent reads to the same snapshot.
func (c *Client) SnapGet(to int, key string, ts uint64) (string, uint64, error) {
	rep, err := c.call(to, Request{Op: OpSnapGet, Key: key, SnapTS: ts}, c.Timeout)
	return rep.Value, rep.TS, err
}

// Commit forwards coordination of txid to a peer: the peer's engine runs the
// commit protocol over participants and the returned outcome is the peer's
// decision ("committed", "aborted" or "pending"). wait bounds the reply
// wait; it must cover the whole protocol, not one message round, so it is
// separate from the per-operation Timeout.
func (c *Client) Commit(to int, txid string, participants []int, wait time.Duration) (engine.Outcome, error) {
	rep, err := c.call(to, Request{TxID: txid, Op: OpCommit, Participants: participants}, wait)
	if err != nil {
		return engine.OutcomePending, err
	}
	switch rep.Value {
	case engine.OutcomeCommitted.String():
		return engine.OutcomeCommitted, nil
	case engine.OutcomeAborted.String():
		return engine.OutcomeAborted, nil
	default:
		return engine.OutcomePending, nil
	}
}

func (c *Client) call(to int, req Request, timeout time.Duration) (Reply, error) {
	c.mu.Lock()
	c.seq++
	req.ReqID = c.seq
	req.MapVersion = c.MapVersion
	ch := make(chan Reply, 1)
	c.pending[req.ReqID] = ch
	c.mu.Unlock()

	if err := c.Send(transport.Message{To: to, Kind: KindOp, TxID: req.TxID, Body: encode(req)}); err != nil {
		c.drop(req.ReqID)
		return Reply{}, err
	}
	select {
	case rep := <-ch:
		if rep.Err != "" {
			// The reply is returned alongside the error: OpSnapGet callers
			// need the snapshot timestamp even when the key is not found,
			// so a session pins its snapshot on the first read either way.
			return Reply{ReqID: rep.ReqID, TS: rep.TS}, errors.New(rep.Err)
		}
		return rep, nil
	case <-time.After(timeout):
		c.drop(req.ReqID)
		return Reply{}, fmt.Errorf("%w (site %d, op %s)", ErrTimeout, to, req.Op)
	}
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}
