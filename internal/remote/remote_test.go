package remote

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
)

// wire connects a Client at site 1 with a Server at site 2 over the
// in-memory network, dispatching by message kind as kvnode does.
func wire(t *testing.T) (*Client, *kv.Store, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	e1 := net.Endpoint(1)
	e2 := net.Endpoint(2)
	store := kv.NewStore(kv.Options{LockTimeout: 30 * time.Millisecond})
	srv := &Server{Store: store, Send: e2.Send}
	client := NewClient(e1.Send, 500*time.Millisecond)
	go func() {
		for m := range e2.Recv() {
			if m.Kind == KindOp {
				srv.Handle(m)
			}
		}
	}()
	go func() {
		for m := range e1.Recv() {
			if m.Kind == KindReply {
				client.Deliver(m)
			}
		}
	}()
	return client, store, net
}

func TestCallRoundTrip(t *testing.T) {
	client, store, _ := wire(t)
	if _, err := client.Call(2, "t1", OpBegin, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(2, "t1", OpPut, "k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := client.Call(2, "t1", OpGet, "k", "")
	if err != nil || v != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := client.Call(2, "t1", OpDelete, "k", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(2, "t1", OpGet, "k", ""); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Fatalf("get deleted = %v", err)
	}
	if _, err := client.Call(2, "t1", OpAbort, "", ""); err != nil {
		t.Fatal(err)
	}
	if p := store.Pending(); len(p) != 0 {
		t.Fatalf("pending after abort: %v", p)
	}
}

func TestCallErrorsPropagate(t *testing.T) {
	client, _, _ := wire(t)
	// Put without begin: ErrNoTxn surfaces as a string error.
	if _, err := client.Call(2, "zz", OpPut, "k", "v"); err == nil ||
		!strings.Contains(err.Error(), "no such transaction") {
		t.Fatalf("err = %v", err)
	}
	if _, err := client.Call(2, "t", "bogus", "", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallTimeoutOnDeadPeer(t *testing.T) {
	client, _, net := wire(t)
	client.Timeout = 50 * time.Millisecond
	net.Crash(2)
	_, err := client.Call(2, "t1", OpBegin, "", "")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	// The pending entry is cleaned up.
	client.mu.Lock()
	n := len(client.pending)
	client.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending leak: %d", n)
	}
}

// TestPooledCodecRoundTrip exercises the pooled encode/decode helpers
// directly and concurrently: values must survive the round trip intact, and
// the returned byte slices must be independent of the pooled buffer (a later
// encode must not scribble over an earlier result).
func TestPooledCodecRoundTrip(t *testing.T) {
	req := Request{ReqID: 7, TxID: "t1", Op: OpPut, Key: "k", Value: "v", Participants: []int{1, 2, 3}, MapVersion: 9}
	first := encode(req)
	// Recycle the pool buffer with other payloads; first must be unaffected.
	for i := 0; i < 8; i++ {
		_ = encode(Reply{ReqID: uint64(i), Value: strings.Repeat("x", 512)})
	}
	var got Request
	if err := decode(first, &got); err != nil {
		t.Fatal(err)
	}
	if got.ReqID != 7 || got.TxID != "t1" || got.Op != OpPut || got.Key != "k" ||
		got.Value != "v" || len(got.Participants) != 3 || got.MapVersion != 9 {
		t.Fatalf("round trip: got %+v", got)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := Reply{ReqID: uint64(g*1000 + i), Value: strings.Repeat("v", g+1)}
				var rep Reply
				if err := decode(encode(want), &rep); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				if rep != want {
					t.Errorf("got %+v, want %+v", rep, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDecodeGarbageErrors: a corrupt body is an error, and the pooled reader
// survives to decode a good body afterwards.
func TestDecodeGarbageErrors(t *testing.T) {
	var req Request
	if err := decode([]byte{0xFF, 0x01, 0x02}, &req); err == nil {
		t.Fatal("garbage decoded without error")
	}
	body := encode(Request{ReqID: 1, Op: OpGet})
	if err := decode(body, &req); err != nil || req.Op != OpGet {
		t.Fatalf("decode after garbage: %+v, %v", req, err)
	}
}

// BenchmarkEncodeRequest measures the pooled codec; before pooling each call
// paid a fresh bytes.Buffer plus its growth doublings.
func BenchmarkEncodeRequest(b *testing.B) {
	req := Request{ReqID: 42, TxID: "tx-000042", Op: OpPut, Key: "account-17", Value: strings.Repeat("v", 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encode(req)
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	body := encode(Request{ReqID: 42, TxID: "tx-000042", Op: OpPut, Key: "account-17", Value: strings.Repeat("v", 64)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var req Request
		if err := decode(body, &req); err != nil {
			b.Fatal(err)
		}
	}
}
