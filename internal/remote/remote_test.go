package remote

import (
	"errors"
	"strings"
	"testing"
	"time"

	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
)

// wire connects a Client at site 1 with a Server at site 2 over the
// in-memory network, dispatching by message kind as kvnode does.
func wire(t *testing.T) (*Client, *kv.Store, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	e1 := net.Endpoint(1)
	e2 := net.Endpoint(2)
	store := kv.NewStore(kv.Options{LockTimeout: 30 * time.Millisecond})
	srv := &Server{Store: store, Send: e2.Send}
	client := NewClient(e1.Send, 500*time.Millisecond)
	go func() {
		for m := range e2.Recv() {
			if m.Kind == KindOp {
				srv.Handle(m)
			}
		}
	}()
	go func() {
		for m := range e1.Recv() {
			if m.Kind == KindReply {
				client.Deliver(m)
			}
		}
	}()
	return client, store, net
}

func TestCallRoundTrip(t *testing.T) {
	client, store, _ := wire(t)
	if _, err := client.Call(2, "t1", OpBegin, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(2, "t1", OpPut, "k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := client.Call(2, "t1", OpGet, "k", "")
	if err != nil || v != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := client.Call(2, "t1", OpDelete, "k", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(2, "t1", OpGet, "k", ""); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Fatalf("get deleted = %v", err)
	}
	if _, err := client.Call(2, "t1", OpAbort, "", ""); err != nil {
		t.Fatal(err)
	}
	if p := store.Pending(); len(p) != 0 {
		t.Fatalf("pending after abort: %v", p)
	}
}

func TestCallErrorsPropagate(t *testing.T) {
	client, _, _ := wire(t)
	// Put without begin: ErrNoTxn surfaces as a string error.
	if _, err := client.Call(2, "zz", OpPut, "k", "v"); err == nil ||
		!strings.Contains(err.Error(), "no such transaction") {
		t.Fatalf("err = %v", err)
	}
	if _, err := client.Call(2, "t", "bogus", "", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallTimeoutOnDeadPeer(t *testing.T) {
	client, _, net := wire(t)
	client.Timeout = 50 * time.Millisecond
	net.Crash(2)
	_, err := client.Call(2, "t1", OpBegin, "", "")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	// The pending entry is cleaned up.
	client.mu.Lock()
	n := len(client.pending)
	client.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending leak: %d", n)
	}
}
