package workload

import (
	"testing"
	"testing/quick"
)

func TestKVDeterministic(t *testing.T) {
	cfg := Config{Sites: 4, KeysPerSite: 100, OpsPerTxn: 3, ReadFrac: 0.5, Seed: 7}
	a, b := NewKV(cfg), NewKV(cfg)
	for i := 0; i < 50; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Coordinator != tb.Coordinator || len(ta.Ops) != len(tb.Ops) {
			t.Fatal("same seed diverged")
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatal("same seed diverged in ops")
			}
		}
	}
}

func TestKVShape(t *testing.T) {
	g := NewKV(Config{Sites: 3, KeysPerSite: 10, OpsPerTxn: 4, ReadFrac: 0.0, Seed: 1})
	reads := 0
	for i := 0; i < 100; i++ {
		tx := g.Next()
		if tx.Coordinator < 1 || tx.Coordinator > 3 {
			t.Fatalf("coordinator %d", tx.Coordinator)
		}
		if len(tx.Ops) != 4 {
			t.Fatalf("ops = %d", len(tx.Ops))
		}
		for _, op := range tx.Ops {
			if op.Site < 1 || op.Site > 3 {
				t.Fatalf("site %d", op.Site)
			}
			if op.Read {
				reads++
			} else if op.Value == "" {
				t.Fatal("write without value")
			}
		}
		sites := tx.Sites()
		if len(sites) < 1 || len(sites) > 3 {
			t.Fatalf("sites = %v", sites)
		}
	}
	if reads != 0 {
		t.Fatalf("ReadFrac=0 produced %d reads", reads)
	}
}

func TestKVZipfSkew(t *testing.T) {
	g := NewKV(Config{Sites: 2, KeysPerSite: 1000, OpsPerTxn: 1, Zipf: true, Seed: 3})
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[g.Next().Ops[0].Key]++
	}
	// Zipf: the hottest key should dominate a uniform share by far.
	if counts["k0"] < 200 {
		t.Fatalf("k0 drawn only %d times; not skewed", counts["k0"])
	}
}

func TestBankTransfersCrossSites(t *testing.T) {
	g := NewBank(4, 10, 11)
	for i := 0; i < 200; i++ {
		tx := g.Next()
		if len(tx.Ops) != 2 {
			t.Fatalf("ops = %d", len(tx.Ops))
		}
		if tx.Ops[0].Site == tx.Ops[1].Site {
			t.Fatal("transfer within one site")
		}
		if tx.Coordinator != tx.Ops[0].Site {
			t.Fatal("coordinator should be the debit site")
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewKV(Config{}) },
		func() { NewBank(1, 10, 0) },
		func() { NewBank(2, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestQuickSitesSubset: Sites() is always a nonempty subset of the site
// range with no duplicates.
func TestQuickSitesSubset(t *testing.T) {
	g := NewKV(Config{Sites: 5, KeysPerSite: 20, OpsPerTxn: 6, ReadFrac: 0.3, Seed: 9})
	f := func() bool {
		tx := g.Next()
		sites := tx.Sites()
		seen := map[int]bool{}
		for _, s := range sites {
			if s < 1 || s > 5 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return len(sites) >= 1
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
