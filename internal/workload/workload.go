// Package workload generates the transaction mixes driven through the
// runtime and the simulator by the benchmark harness: uniform and Zipfian
// key selection over partitioned keyspaces, and the bank-transfer workload
// that motivates atomic distributed commitment.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one read or write in a transaction.
type Op struct {
	Site  int
	Key   string
	Value string // empty for reads
	Read  bool
}

// Txn is a generated transaction: a set of operations plus the coordinator
// chosen to drive its commit.
type Txn struct {
	Coordinator int
	Ops         []Op
}

// Sites returns the distinct sites the transaction touches.
func (t Txn) Sites() []int {
	seen := map[int]bool{}
	var out []int
	for _, op := range t.Ops {
		if !seen[op.Site] {
			seen[op.Site] = true
			out = append(out, op.Site)
		}
	}
	return out
}

// Generator produces transactions.
type Generator interface {
	Next() Txn
}

// Config parameterizes the generic generator.
type Config struct {
	Sites       int // number of sites (1-based IDs)
	KeysPerSite int // keyspace size at each site
	OpsPerTxn   int // operations per transaction
	ReadFrac    float64
	Zipf        bool    // Zipfian key selection instead of uniform
	ZipfS       float64 // Zipf skew (s > 1); default 1.2
	Seed        int64
}

// KV is the generic key-value workload generator.
type KV struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

// NewKV builds a generator; panics on nonsensical configuration.
func NewKV(cfg Config) *KV {
	if cfg.Sites < 1 || cfg.KeysPerSite < 1 || cfg.OpsPerTxn < 1 {
		panic("workload: Sites, KeysPerSite and OpsPerTxn must be positive")
	}
	g := &KV{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf {
		s := cfg.ZipfS
		if s <= 1 {
			s = 1.2
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(cfg.KeysPerSite-1))
	}
	return g
}

func (g *KV) key() string {
	if g.zipf != nil {
		return fmt.Sprintf("k%d", g.zipf.Uint64())
	}
	return fmt.Sprintf("k%d", g.rng.Intn(g.cfg.KeysPerSite))
}

// Next implements Generator.
func (g *KV) Next() Txn {
	g.seq++
	t := Txn{Coordinator: 1 + g.rng.Intn(g.cfg.Sites)}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		op := Op{
			Site: 1 + g.rng.Intn(g.cfg.Sites),
			Key:  g.key(),
			Read: g.rng.Float64() < g.cfg.ReadFrac,
		}
		if !op.Read {
			op.Value = fmt.Sprintf("v%d-%d", g.seq, i)
		}
		t.Ops = append(t.Ops, op)
	}
	return t
}

// Bank generates transfer transactions between accounts spread across
// sites: each transaction debits one account and credits another at a
// different site, the canonical "must be atomic" workload.
type Bank struct {
	sites    int
	accounts int
	rng      *rand.Rand
	seq      int
}

// NewBank builds a bank-transfer generator with `accounts` accounts per
// site.
func NewBank(sites, accounts int, seed int64) *Bank {
	if sites < 2 || accounts < 1 {
		panic("workload: bank needs >=2 sites and >=1 account")
	}
	return &Bank{sites: sites, accounts: accounts, rng: rand.New(rand.NewSource(seed))}
}

// Account formats the key of account i at a site.
func Account(i int) string { return fmt.Sprintf("acct%d", i) }

// Next implements Generator: one debit and one credit at distinct sites.
func (b *Bank) Next() Txn {
	b.seq++
	from := 1 + b.rng.Intn(b.sites)
	to := 1 + b.rng.Intn(b.sites-1)
	if to >= from {
		to++
	}
	amount := 1 + b.rng.Intn(100)
	acctFrom := Account(b.rng.Intn(b.accounts))
	acctTo := Account(b.rng.Intn(b.accounts))
	return Txn{
		Coordinator: from,
		Ops: []Op{
			{Site: from, Key: acctFrom, Value: fmt.Sprintf("debit%d-%d", amount, b.seq)},
			{Site: to, Key: acctTo, Value: fmt.Sprintf("credit%d-%d", amount, b.seq)},
		},
	}
}
