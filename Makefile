GO ?= go
FUZZTIME ?= 10s
DST_SEEDS ?= 500

.PHONY: all build vet test race fuzz-smoke dst dst-ci dst-regress bench-throughput bench-throughput-smoke bench-readmix-smoke bench-allocs bench-forced bench-transport bench-transport-smoke bench-scaleout bench-chaos bench-chaos-smoke smoke-sharded smoke-obs

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every fuzz target, starting from the checked-in
# seed corpora under */testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzScan$$' -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeWrites$$' -fuzztime=$(FUZZTIME) ./internal/kv
	$(GO) test -run='^$$' -fuzz='^FuzzCompile$$' -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz='^FuzzWireCodec$$' -fuzztime=$(FUZZTIME) ./internal/transport

# Deterministic simulation sweep: exhaustive crash-point enumeration plus
# $(DST_SEEDS) random failure schedules per protocol (2PC, 3PC and Paxos
# Commit).
dst:
	$(GO) run ./cmd/dst -protocol all -seeds $(DST_SEEDS)

# Capped sweep for CI.
dst-ci:
	$(GO) run ./cmd/dst -protocol all -seeds 50

# Replay the pinned engine-bug regression seeds (the exact schedules that
# exposed each previously fixed bug; see EXPERIMENTS.md).
dst-regress:
	$(GO) run ./cmd/dst -regress

# Closed-loop commit throughput: 64 clients against a 3-node in-process
# cluster, 2PC, 3PC and Paxos Commit, group commit on and off, fsync enabled;
# then the 90/10 read-mix matrix comparing snapshot fast-path reads against
# protocol-enlisted reads (single-shard snapshot reads must sustain >=5x the
# protocol-read rate). Emits BENCH_commit_throughput.json.
bench-throughput:
	$(GO) run ./cmd/loadgen -clients 64 -duration 5s -read-ratio 0.9 \
		-out BENCH_commit_throughput.json

# Short smoke for CI: same harness, small load, throwaway output.
bench-throughput-smoke:
	$(GO) run ./cmd/loadgen -clients 8 -duration 500ms -warmup 200ms -out /tmp/bench-smoke.json

# Read-mix smoke for CI: small 90/10 zipf-skewed mix, both read paths, all
# three protocols, with the version-chain GC loop running throughout.
bench-readmix-smoke:
	$(GO) run ./cmd/loadgen -clients 8 -duration 500ms -warmup 200ms \
		-read-ratio 0.9 -zipf 1.2 -keys 500 -out /tmp/readmix-smoke.json

# Allocation regression guard for the engine hot path: a full three-site
# commit (Begin through coordinator decision, in-memory substrate) must stay
# within the allocs/op budget. The pre-sharded-core engine measured 74 (2PC)
# and 94 (3PC) allocs/op; the budgets hold the refactored path's gains with
# headroom for noise. Paxos Commit measured 83 allocs/op at introduction (the
# per-instance acceptor ledger and the 2a/2b fan-out cost real allocations on
# top of the 2PC skeleton); its budget holds that with the same headroom.
bench-allocs:
	$(GO) test -run '^$$' -bench '^BenchmarkEngineCommitAllocs$$' -benchmem -benchtime 2000x ./internal/engine | tee /tmp/engine-allocs.txt
	@awk ' \
		/BenchmarkEngineCommitAllocs\/2PC/ { if ($$(NF-1)+0 > 60) { print "FAIL: 2PC " $$(NF-1) " allocs/op exceeds budget 60"; bad=1 } } \
		/BenchmarkEngineCommitAllocs\/3PC/ { if ($$(NF-1)+0 > 70) { print "FAIL: 3PC " $$(NF-1) " allocs/op exceeds budget 70"; bad=1 } } \
		/BenchmarkEngineCommitAllocs\/Paxos/ { if ($$(NF-1)+0 > 100) { print "FAIL: Paxos " $$(NF-1) " allocs/op exceeds budget 100"; bad=1 } } \
		END { if (bad) exit 1; print "alloc budgets ok (2PC <= 60, 3PC <= 70, Paxos <= 100)" }' /tmp/engine-allocs.txt

# Forced-record budget guard: WAL records forced per transaction, by role,
# must not regress. Presumed-abort 2PC pays 1 coordinator force per commit
# (the decision record; begin and end are lazy), at most 2 participant-side
# (vote + decision), and an abort forces nothing at the coordinator — the
# no-trace presumption IS the abort record. 3PC and Paxos Commit force their
# extra rounds but share the lazy begin/end treatment.
bench-forced:
	$(GO) test -run '^$$' -bench '^BenchmarkEngineForcedRecords$$' -benchtime 1000x ./internal/engine | tee /tmp/engine-forced.txt
	@awk ' \
		function metric(name,   i) { for (i = 1; i <= NF; i++) if ($$i == name) return $$(i-1) + 0; return -1 } \
		/BenchmarkEngineForcedRecords\/2PC-abort/ { c = metric("coord-forced/op"); if (c > 0) { print "FAIL: 2PC abort forced " c " coordinator records/op, budget 0"; bad = 1 } next } \
		/BenchmarkEngineForcedRecords\/2PC/ { c = metric("coord-forced/op"); p = metric("part-forced/op"); if (c > 1 || p > 2) { print "FAIL: 2PC forced " c "/" p " coord/part records per commit, budget 1/2"; bad = 1 } next } \
		/BenchmarkEngineForcedRecords\/3PC/ { c = metric("coord-forced/op"); p = metric("part-forced/op"); if (c > 3 || p > 3) { print "FAIL: 3PC forced " c "/" p " coord/part records per commit, budget 3/3"; bad = 1 } next } \
		/BenchmarkEngineForcedRecords\/Paxos/ { c = metric("coord-forced/op"); p = metric("part-forced/op"); if (c > 5 || p > 4) { print "FAIL: Paxos forced " c "/" p " coord/part records per commit, budget 5/4"; bad = 1 } next } \
		END { if (bad) exit 1; print "forced-record budgets ok (2PC 1/2, 3PC 3/3, Paxos 5/4, 2PC abort coord 0)" }' /tmp/engine-forced.txt

# Transport microbenchmark: raw message throughput and latency between two
# TCP endpoints on loopback, gob vs binary codec, coalescing on and off, at
# 1/8/64-byte bodies. Exits nonzero on zero throughput or corrupted bodies.
# Emits BENCH_transport.json.
bench-transport:
	$(GO) run ./cmd/loadgen -mode transport -duration 3s -bodies 1,8,64 -out BENCH_transport.json

# Short smoke for CI: same sweep at one body size, throwaway output.
bench-transport-smoke:
	$(GO) run ./cmd/loadgen -mode transport -duration 300ms -warmup 100ms \
		-bodies 64 -out /tmp/transport-smoke.json

# Scale-out: keyed (shard-routed) transactions over growing clusters, sweeping
# the cross-shard ratio, with -clients per site (weak scaling). Single-shard
# transactions must engage exactly one site; the run fails on zero commits or
# any consistency violation. Emits BENCH_shard_scaleout.json.
bench-scaleout:
	$(GO) run ./cmd/loadgen -mode scaleout -clients 16 -duration 3s \
		-sites 2,4,8 -cross-shard 0,0.25,1 -out BENCH_shard_scaleout.json

# Hostile-environment matrix: the curated WAN scenario table (symmetric and
# asymmetric partitions, gray coordinator, coordinator crash after prepare)
# swept for 2PC, 3PC and Paxos Commit over 25 seeds per cell, measuring
# blocking probability, commit availability and cross-region tail latency in
# virtual time. Exits nonzero if 2PC or Paxos ever splits a decision, if no
# scenario shows 2PC blocking while 3PC terminates, or if Paxos loses its
# ballot-0 two-delay fast path (fault-free WAN p50 must stay below 3PC's).
# Emits BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/loadgen -mode chaos -chaos-seeds 25 -out BENCH_chaos.json

# Short smoke for CI: same matrix, 3 seeds per cell, throwaway output.
bench-chaos-smoke:
	$(GO) run ./cmd/loadgen -mode chaos -chaos-seeds 3 -out /tmp/chaos-smoke.json

# Observability smoke for CI: starts a kvnode with -obs-addr, commits
# transactions, scrapes /metrics and asserts the per-phase latency, WAL and
# transport series are present with samples.
smoke-obs:
	$(GO) test -run '^TestObsEndpoints$$' -count=1 -v ./cmd/kvnode

# Sharded smoke for CI: 4-node in-process cluster, mixed single/cross-shard
# keyed workload; exits nonzero on zero commits or consistency violations.
smoke-sharded:
	$(GO) run ./cmd/loadgen -mode scaleout -clients 8 -duration 500ms -warmup 200ms \
		-sites 4 -cross-shard 0.5 -out /tmp/sharded-smoke.json
