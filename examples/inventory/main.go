// Inventory: reservations against four warehouse sites with durable (file
// backed) write-ahead logs. A warehouse crashes after voting YES; the rest
// of the cohort commits anyway (3PC waives the dead site's acknowledgement),
// and the crashed warehouse recovers from its WAL: it replays committed
// history, discovers the in-doubt reservation, asks the cohort, and applies
// the commit — no reservation is lost and no site disagrees.
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
)

func main() {
	dir, err := os.MkdirTemp("", "inventory-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := dtx.NewCluster(4, dtx.Options{
		Protocol: engine.ThreePhase,
		Timeout:  100 * time.Millisecond,
		Dir:      dir, // real WALs: site<i>.wal survives the crash below
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Seed stock levels at each warehouse.
	seed, _ := cluster.Begin(1)
	for site := 1; site <= 4; site++ {
		must(seed.Put(site, "stock:widget", "10"))
	}
	if o, err := seed.Commit(5 * time.Second); err != nil || o != engine.OutcomeCommitted {
		log.Fatalf("seeding: %v %v", o, err)
	}
	fmt.Println("stock seeded: 10 widgets at each of 4 warehouses")

	// Reserve one widget at warehouses 2, 3 and 4 atomically. Warehouse 4
	// will crash right after voting: its PREPARE never arrives.
	cluster.Net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 4 && m.Kind == engine.KindPrepare
	})
	tx, _ := cluster.Begin(1)
	must(tx.Put(2, "stock:widget", "9"))
	must(tx.Put(3, "stock:widget", "9"))
	must(tx.Put(4, "stock:widget", "9"))
	done := make(chan struct{})
	var outcome engine.Outcome
	go func() {
		defer close(done)
		outcome, _ = tx.Commit(5 * time.Second)
	}()
	waitPhase(cluster, 4, tx.ID, "w")
	fmt.Println("warehouse 4 voted YES — crashing it mid-protocol")
	cluster.Crash(4)
	cluster.Net.SetDropFunc(nil)
	<-done
	fmt.Printf("cohort decision without warehouse 4: %v\n", outcome)

	fmt.Println("restarting warehouse 4 from its WAL...")
	if err := cluster.Recover(4); err != nil {
		log.Fatal(err)
	}
	o, err := cluster.Node(4).Site.WaitOutcome(tx.ID, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse 4 resolved its in-doubt reservation: %v\n", o)

	for site := 2; site <= 4; site++ {
		v, _ := cluster.Node(site).Store.Read("stock:widget")
		fmt.Printf("  warehouse %d stock: %s\n", site, v)
	}
}

func waitPhase(cluster *dtx.Cluster, site int, txid, phase string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Node(site).Site.Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatalf("site %d never reached phase %s", site, phase)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
