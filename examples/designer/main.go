// Designer: use the analysis library the way the paper's method intends —
// define a commit protocol, compute its concurrency sets, check the
// fundamental nonblocking theorem, and let the buffer-state synthesis turn
// a blocking protocol into a nonblocking one.
//
//	go run ./examples/designer
package main

import (
	"fmt"
	"log"
	"os"

	"nbcommit/internal/core"
	"nbcommit/internal/protocol"
)

func main() {
	// 1. Start from the central-site 2PC of slide 15 with four sites.
	p2 := protocol.CentralTwoPC(4)
	g2, err := core.Build(p2, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats := g2.Stats()
	fmt.Printf("%s: %d reachable global states, %d inconsistent, %d deadlocked\n",
		p2.Name, stats.States, stats.Inconsistent, stats.Deadlocked)

	// 2. Concurrency sets and committable states.
	analysis := core.Analyze(g2)
	for _, s := range []protocol.StateID{"q", "w", "a", "c"} {
		cs, err := analysis.Set(2, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  slave %s\n", cs)
	}
	fmt.Printf("  committable states: %s\n", core.CommittableSummary(analysis))

	// 3. The fundamental nonblocking theorem says 2PC blocks, and where.
	report := core.CheckTheorem(g2)
	fmt.Println(report)

	// 4. Apply the paper's design method: mechanically insert the buffer
	//    state (a prepare/ack round) before every commit transition.
	p3, err := core.SynthesizeCentralBuffer(p2)
	if err != nil {
		log.Fatal(err)
	}
	g3, err := core.Build(p3, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.CheckTheorem(g3))

	// 5. The synthesized protocol is exactly the central-site 3PC of
	//    slide 35.
	ref := protocol.CentralThreePC(4)
	same := true
	for i := range p3.Sites {
		if !core.StructurallyEquivalent(p3.Sites[i], ref.Sites[i]) {
			same = false
		}
	}
	fmt.Printf("synthesized protocol structurally equals the paper's 3PC: %v\n", same)

	// 6. Termination decisions for every state a backup coordinator could
	//    be in (slide 40): commit from {p, c}, abort from {q, w, a}.
	a3 := core.Analyze(g3)
	fmt.Println("backup coordinator decision rule (slave states):")
	for _, s := range []protocol.StateID{"q", "w", "p", "a", "c"} {
		d, err := core.TerminationRule(a3, 2, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  backup in %s -> %s\n", s, d)
	}

	// 7. Export the slave automaton for graphviz.
	fmt.Println("\nDOT for the synthesized slave automaton:")
	if err := core.WriteAutomatonDOT(os.Stdout, p3.Sites[1]); err != nil {
		log.Fatal(err)
	}
}
