// Quickstart: five sites, one distributed transaction, committed with the
// nonblocking three-phase commit protocol.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
)

func main() {
	// A cluster of five in-process sites connected by the in-memory
	// network, each with its own write-ahead log and lock-based store,
	// committing with 3PC.
	cluster, err := dtx.NewCluster(5, dtx.Options{Protocol: engine.ThreePhase})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// A transaction coordinated by site 1 that writes at three sites.
	tx, err := cluster.Begin(1)
	if err != nil {
		log.Fatal(err)
	}
	must(tx.Put(2, "user:42", "alice"))
	must(tx.Put(3, "balance:42", "100"))
	must(tx.Put(4, "audit:42", "created"))

	outcome, err := tx.Commit(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction %s: %s across sites %v\n", tx.ID, outcome, tx.Participants())

	for _, site := range []int{2, 3, 4} {
		for _, key := range cluster.Node(site).Store.Keys() {
			v, _ := cluster.Node(site).Store.Read(key)
			fmt.Printf("  site %d: %s = %s\n", site, key, v)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
