// Partition: what happens when the paper's one environmental assumption —
// "the underlying network ... never fails" — is violated. A 5-site cohort
// is split {1,2} | {3,4,5} just after the coordinator's PREPARE reached
// site 2. Each side detects the other as failed (a partition is
// indistinguishable from a crash) and runs the termination protocol:
//
//   - plain 3PC: the prepared side commits, the waiting side aborts —
//     atomicity is violated;
//   - quorum-based 3PC (the paper's follow-up direction): the majority side
//     reaches its abort quorum and aborts; the prepared minority blocks
//     rather than guess. Atomicity holds.
//
// Everything runs on the deterministic simulator, so the run is exactly
// reproducible.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"sort"

	"nbcommit/internal/sim"
)

func main() {
	schedule := func(proto sim.Protocol) sim.Config {
		return sim.Config{
			N: 5, Protocol: proto, Seed: 3,
			LatencyMin: sim.Millisecond, LatencyMax: sim.Millisecond,
			Stagger:         2 * sim.Millisecond,
			PartitionAt:     9*sim.Millisecond + 500*sim.Microsecond,
			PartitionGroups: [][]int{{1, 2}, {3, 4, 5}},
		}
	}

	fmt.Println("=== plain 3PC under a {1,2} | {3,4,5} partition ===")
	report(sim.RunTransaction(schedule(sim.Central3PC)))

	fmt.Println()
	fmt.Println("=== quorum-based 3PC under the same partition ===")
	report(sim.RunTransaction(schedule(sim.Quorum3PC)))
}

func report(res sim.Result) {
	ids := make([]int, 0, len(res.Sites))
	for id := range res.Sites {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		so := res.Sites[id]
		status := fmt.Sprintf("state %c", so.Phase)
		if so.Blocked {
			status += " (BLOCKED)"
		}
		if so.Crashed {
			status += " (crashed)"
		}
		fmt.Printf("  site %d: %s\n", id, status)
	}
	if res.Consistent {
		fmt.Println("  atomicity: PRESERVED")
	} else {
		fmt.Println("  atomicity: VIOLATED — some sites committed while others aborted")
	}
}
