// Banking: the paper's motivating failure, end to end. A bank transfer is
// in flight when the coordinator crashes after collecting the votes.
//
// Under two-phase commit the surviving branches are stuck in the
// uncertainty window: they voted YES and cannot learn the outcome until the
// coordinator recovers — accounts stay locked, the branch is blocked.
//
// Under three-phase commit the survivors elect a backup coordinator and run
// the paper's termination protocol: the transaction terminates at every
// operational site and business continues.
//
//	go run ./examples/banking
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
)

const sites = 4

func main() {
	fmt.Println("=== 2PC: coordinator crash blocks the survivors ===")
	runScenario(engine.TwoPhase)
	fmt.Println()
	fmt.Println("=== 3PC: survivors terminate via the backup coordinator ===")
	runScenario(engine.ThreePhase)
}

func runScenario(kind engine.ProtocolKind) {
	cluster, err := dtx.NewCluster(sites, dtx.Options{
		Protocol: kind,
		Timeout:  100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	seedAccounts(cluster)

	// Swallow the coordinator's outgoing decision so the crash happens
	// inside the uncertainty window, then transfer $50 from branch 2 to
	// branch 3, coordinated by site 1.
	cluster.Net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && (m.Kind == engine.KindCommit ||
			m.Kind == engine.KindAbort || m.Kind == engine.KindPrepare)
	})
	tx, err := cluster.Begin(1)
	if err != nil {
		log.Fatal(err)
	}
	must(tx.Put(2, "acct:alice", "50")) // was 100
	must(tx.Put(3, "acct:bob", "250"))  // was 200
	go tx.Commit(50 * time.Millisecond) // decision messages are swallowed
	waitPhase(cluster, 2, tx.ID, "w")   // both branches voted YES...
	waitPhase(cluster, 3, tx.ID, "w")   // ...and are now uncertain
	fmt.Printf("branches voted YES on %s; crashing the coordinator now\n", tx.ID)
	cluster.Crash(1)
	cluster.Net.SetDropFunc(nil)

	// What do the surviving branches do?
	deadline := time.Now().Add(3 * time.Second)
	for _, site := range []int{2, 3} {
		report(cluster, site, tx.ID, deadline)
	}

	if kind == engine.TwoPhase {
		fmt.Println("recovering the coordinator to release the branches...")
		if err := cluster.Recover(1); err != nil {
			log.Fatal(err)
		}
		for _, site := range []int{2, 3} {
			o, err := cluster.Node(site).Site.WaitOutcome(tx.ID, 5*time.Second)
			fmt.Printf("  site %d after coordinator recovery: %v (err=%v)\n", site, o, err)
		}
	}
	for _, site := range []int{2, 3} {
		a, _ := cluster.Node(site).Store.Read("acct:alice")
		b, _ := cluster.Node(site).Store.Read("acct:bob")
		fmt.Printf("  site %d accounts: alice=%q bob=%q\n", site, a, b)
	}
}

func report(cluster *dtx.Cluster, site int, txid string, deadline time.Time) {
	for time.Now().Before(deadline) {
		o, err := cluster.Node(site).Site.Outcome(txid)
		if errors.Is(err, engine.ErrBlocked) {
			fmt.Printf("  site %d: BLOCKED — %v\n", site, err)
			return
		}
		if o != engine.OutcomePending {
			fmt.Printf("  site %d: %v (terminated without the coordinator)\n", site, o)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  site %d: still pending\n", site)
}

func seedAccounts(cluster *dtx.Cluster) {
	tx, err := cluster.Begin(2)
	if err != nil {
		log.Fatal(err)
	}
	must(tx.Put(2, "acct:alice", "100"))
	must(tx.Put(3, "acct:bob", "200"))
	if o, err := tx.Commit(5 * time.Second); err != nil || o != engine.OutcomeCommitted {
		log.Fatalf("seeding failed: %v %v", o, err)
	}
}

func waitPhase(cluster *dtx.Cluster, site int, txid, phase string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Node(site).Site.Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatalf("site %d never reached phase %s for %s", site, phase, txid)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
